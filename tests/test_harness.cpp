// Sweep harness: trace cache build-once semantics, deterministic per-cell
// seeding, thread-count-invariant results, and the JSON results sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "harness/sink.hpp"
#include "harness/sweep.hpp"

namespace dircc::harness {
namespace {

ProgramTrace tiny_trace(int procs) {
  ProgramTrace trace;
  trace.app_name = "tiny";
  trace.block_size = 16;
  trace.per_proc.assign(static_cast<std::size_t>(procs), {});
  for (int p = 0; p < procs; ++p) {
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    for (int i = 0; i < 40; ++i) {
      stream.push_back(TraceEvent::read(static_cast<Addr>((p + i) % 9) * 16));
      stream.push_back(TraceEvent::write(static_cast<Addr>((p * i) % 5) * 16));
    }
  }
  return trace;
}

TEST(TraceCache, BuildsEachKeyOnce) {
  TraceCache cache;
  std::atomic<int> builds{0};
  TraceSpec spec{"tiny(p=4)", [&builds] {
                   ++builds;
                   return tiny_trace(4);
                 }};
  const auto first = cache.get(spec);
  const auto second = cache.get(spec);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // shared, not copied
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, ConcurrentGetsShareOneBuild) {
  TraceCache cache;
  std::atomic<int> builds{0};
  TraceSpec spec{"tiny(p=2)", [&builds] {
                   ++builds;
                   return tiny_trace(2);
                 }};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const ProgramTrace>> seen(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&cache, &spec, &seen, t] { seen[static_cast<std::size_t>(t)] = cache.get(spec); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(builds.load(), 1);
  for (const auto& trace : seen) {
    EXPECT_EQ(trace.get(), seen.front().get());
  }
}

TEST(TraceCache, DistinctKeysBuildDistinctTraces) {
  TraceCache cache;
  const auto a = cache.get(app_trace(AppKind::kMp3d, 4, 16, 3, 0.05));
  const auto b = cache.get(app_trace(AppKind::kMp3d, 4, 16, 4, 0.05));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCache, ThrowingBuilderDoesNotPoisonTheKey) {
  // A builder that throws must not leave a valueless promise in the cache:
  // that entry would fail every later get() for the key with a
  // broken_promise future_error instead of the real exception, and the
  // build could never be retried.
  TraceCache cache;
  int calls = 0;
  TraceSpec flaky{"flaky-trace", [&calls]() -> ProgramTrace {
                    if (++calls == 1) {
                      throw std::runtime_error("generator failed");
                    }
                    return tiny_trace(2);
                  }};
  EXPECT_THROW(cache.get(flaky), std::runtime_error);
  EXPECT_EQ(cache.size(), 0u);  // the failed entry was erased
  const auto trace = cache.get(flaky);  // the retry builds cleanly
  ASSERT_TRUE(trace);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, ConcurrentWaitersSeeTheBuildersError) {
  // Whichever caller wins the build race, every caller must observe the
  // builder's own exception type — never a future_error.
  TraceCache cache;
  TraceSpec failing{"always-throws", []() -> ProgramTrace {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(20));
                      throw std::runtime_error("generator failed");
                    }};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &failing, &errors] {
      try {
        cache.get(failing);
      } catch (const std::runtime_error&) {
        ++errors;
      } catch (...) {
        // Wrong exception type (e.g. broken_promise): not counted.
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(errors.load(), 4);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TraceSpecKey, NearEqualScalesGetDistinctKeys) {
  // Keys render doubles at max_digits10: two distinct scales that agree in
  // their first six significant digits must not collide onto one cache
  // entry (a collision silently serves the wrong trace to a sweep).
  const TraceSpec a = app_trace(AppKind::kMp3d, 8, 16, 3, 0.05);
  const TraceSpec b = app_trace(AppKind::kMp3d, 8, 16, 3, 0.05 + 1e-9);
  EXPECT_NE(a.key, b.key);
  // Equal scales still key (and therefore cache) identically.
  EXPECT_EQ(a.key, app_trace(AppKind::kMp3d, 8, 16, 3, 0.05).key);
  TraceCache cache;
  cache.get(a);
  cache.get(b);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CellSeed, IsStableAndKeyDependent) {
  EXPECT_EQ(cell_seed(1990, "grid/a"), cell_seed(1990, "grid/a"));
  EXPECT_NE(cell_seed(1990, "grid/a"), cell_seed(1990, "grid/b"));
  EXPECT_NE(cell_seed(1990, "grid/a"), cell_seed(1991, "grid/a"));
  EXPECT_NE(cell_seed(1990, "grid/a"), 0u);
}

std::vector<SweepCell> small_grid() {
  std::vector<SweepCell> cells;
  const SchemeConfig schemes[] = {SchemeConfig::full(8),
                                  SchemeConfig::coarse(8, 3, 2)};
  for (const SchemeConfig& scheme : schemes) {
    for (int size_factor : {0, 1}) {
      SystemConfig config;
      config.num_procs = 8;
      config.cache_lines_per_proc = 64;
      config.cache_assoc = 4;
      config.scheme = scheme;
      if (size_factor != 0) {
        config.store.sparse = true;
        config.store.sparse_entries = 64;
        config.store.sparse_assoc = 4;
      }
      SweepCell cell;
      cell.key = "test/scheme=" + std::to_string(scheme.num_pointers) +
                 "/sf=" + std::to_string(size_factor);
      cell.fields = {{"sf", std::to_string(size_factor)}};
      cell.trace = app_trace(AppKind::kMp3d, 8, 16, 3, 0.05);
      cell.system = config;
      cell.system.seed = cell_seed(1990, cell.key);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(SweepRunner, ResultsArriveInCellOrder) {
  const std::vector<SweepCell> cells = small_grid();
  SweepRunner runner(4);
  const std::vector<CellResult> results = runner.run(cells);
  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(results[i].key, cells[i].key);
    EXPECT_GT(results[i].result.protocol.accesses, 0u);
  }
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults) {
  const std::vector<SweepCell> cells = small_grid();
  const std::vector<CellResult> serial = SweepRunner(1).run(cells);
  const std::vector<CellResult> threaded = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.exec_cycles, threaded[i].result.exec_cycles);
    EXPECT_EQ(serial[i].result.protocol.messages.total(),
              threaded[i].result.protocol.messages.total());
    EXPECT_EQ(serial[i].result.protocol.inval_distribution.total(),
              threaded[i].result.protocol.inval_distribution.total());
    EXPECT_EQ(serial[i].result.cache.read_misses,
              threaded[i].result.cache.read_misses);
  }
}

TEST(SweepRunner, MatchesADirectSerialRun) {
  const std::vector<SweepCell> cells = small_grid();
  const std::vector<CellResult> swept = SweepRunner(3).run(cells);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ProgramTrace trace = cells[i].trace.build();
    CoherenceSystem system(cells[i].system);
    Engine engine(system, trace, cells[i].engine);
    const RunResult direct = engine.run();
    EXPECT_EQ(swept[i].result.exec_cycles, direct.exec_cycles);
    EXPECT_EQ(swept[i].result.protocol.messages.total(),
              direct.protocol.messages.total());
  }
}

TEST(SweepRunner, WorkerExceptionIsRethrownAfterTheSweep) {
  // A throwing cell (here: its trace builder) used to escape the worker
  // thread's body and std::terminate the whole process. The runner must
  // instead capture the first error, drain the remaining cells, join the
  // pool and rethrow to the caller.
  std::vector<SweepCell> cells = small_grid();
  cells[1].trace = TraceSpec{"sweep-throwing-trace", []() -> ProgramTrace {
                               throw std::runtime_error("cell failed");
                             }};
  EXPECT_THROW(SweepRunner(2).run(cells), std::runtime_error);
  EXPECT_THROW(SweepRunner(1).run(cells), std::runtime_error);
}

TEST(SweepRunner, FailingSweepStopsTheProgressReporter) {
  std::vector<SweepCell> cells = small_grid();
  cells.front().trace =
      TraceSpec{"reporter-throwing-trace", []() -> ProgramTrace {
                  throw std::runtime_error("cell failed");
                }};
  std::ostringstream progress;
  SweepOptions options;
  options.progress = true;
  options.progress_out = &progress;
  EXPECT_THROW(SweepRunner(2).run(cells, options), std::runtime_error);
  // The reporter thread was joined and closed its line before the rethrow.
  ASSERT_FALSE(progress.str().empty());
  EXPECT_EQ(progress.str().back(), '\n');
}

TEST(SweepRunnerDeathTest, RejectsDuplicateCellKeys) {
  std::vector<SweepCell> cells = small_grid();
  cells.push_back(cells.front());
  EXPECT_DEATH(SweepRunner(1).run(cells), "unique");
}

TEST(Sink, JsonlIsSortedByKeyAndDeterministic) {
  std::vector<SweepCell> cells = small_grid();
  // Reverse definition order: the sink must sort by key regardless.
  std::reverse(cells.begin(), cells.end());
  SinkOptions options;
  options.include_timing = false;
  std::ostringstream a;
  write_results_jsonl(a, SweepRunner(1).run(cells), options);
  std::ostringstream b;
  write_results_jsonl(b, SweepRunner(4).run(cells), options);
  EXPECT_EQ(a.str(), b.str());  // byte-identical across thread counts
  // Sorted: each line's key is >= the previous line's key.
  std::istringstream lines(a.str());
  std::string line;
  std::string prev;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    const auto start = line.find("\"cell\":\"") + 8;
    const std::string key = line.substr(start, line.find('"', start) - start);
    EXPECT_LE(prev, key);
    prev = key;
    ++count;
  }
  EXPECT_EQ(count, 4);
}

TEST(SweepRunner, RecordedTimelinesAreThreadCountInvariant) {
  // Event timelines carry only simulated-cycle timestamps, so their
  // exported bytes — like the results themselves — must not depend on how
  // many worker threads ran the sweep.
  const std::vector<SweepCell> cells = small_grid();
  SweepOptions options;
  options.record_traces = true;
  const std::vector<CellResult> serial = SweepRunner(1).run(cells, options);
  const std::vector<CellResult> threaded = SweepRunner(4).run(cells, options);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].trace);
    ASSERT_TRUE(threaded[i].trace);
    std::ostringstream a;
    serial[i].trace->write_chrome_json(a);
    std::ostringstream b;
    threaded[i].trace->write_chrome_json(b);
    EXPECT_EQ(a.str(), b.str()) << cells[i].key;
    std::ostringstream al;
    serial[i].trace->write_jsonl(al);
    std::ostringstream bl;
    threaded[i].trace->write_jsonl(bl);
    EXPECT_EQ(al.str(), bl.str()) << cells[i].key;
    if (obs::compiled()) {
      // mp3d's trace has locks and barriers; the timeline must not be empty.
      EXPECT_GT(serial[i].trace->recorded(), 0u) << cells[i].key;
    }
  }
}

TEST(SweepRunner, RecordingDoesNotPerturbResults) {
  const std::vector<SweepCell> cells = small_grid();
  SweepOptions options;
  options.record_traces = true;
  const std::vector<CellResult> plain = SweepRunner(2).run(cells);
  const std::vector<CellResult> recorded = SweepRunner(2).run(cells, options);
  ASSERT_EQ(plain.size(), recorded.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].result.exec_cycles, recorded[i].result.exec_cycles);
    EXPECT_EQ(plain[i].result.protocol.messages.total(),
              recorded[i].result.protocol.messages.total());
    EXPECT_FALSE(plain[i].trace);  // off by default
  }
}

TEST(SweepRunner, TelemetryCoversEveryCell) {
  const std::vector<SweepCell> cells = small_grid();
  SweepRunner runner(2);
  runner.run(cells, {});
  const SweepTelemetry& telemetry = runner.telemetry();
  EXPECT_EQ(telemetry.cells_run, cells.size());
  EXPECT_EQ(telemetry.cell_ms.count(), cells.size());
  EXPECT_EQ(telemetry.build_ms.count(), cells.size());
  EXPECT_EQ(telemetry.sim_ms.count(), cells.size());
  EXPECT_EQ(telemetry.threads_used, 2);
  EXPECT_EQ(telemetry.thread_busy_ms.size(), 2u);
  EXPECT_GT(telemetry.wall_ms, 0.0);
  EXPECT_GE(telemetry.utilization(), 0.0);
  EXPECT_LE(telemetry.utilization(), 1.0);
}

TEST(SweepRunner, ProgressReportWritesToTheGivenStream) {
  const std::vector<SweepCell> cells = small_grid();
  std::ostringstream progress;
  SweepOptions options;
  options.progress = true;
  options.progress_out = &progress;
  SweepRunner(2).run(cells, options);
  const std::string out = progress.str();
  EXPECT_NE(out.find("[sweep]"), std::string::npos);
  EXPECT_NE(out.find("4/4 cells"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');  // reporter closes its line
}

TEST(Sink, TimingFieldIsPresentOnlyWhenAsked) {
  CellResult cell;
  cell.key = "k";
  cell.wall_ms = 1.5;
  std::ostringstream with;
  write_cell_json(with, cell, {.include_timing = true});
  EXPECT_NE(with.str().find("\"wall_ms\""), std::string::npos);
  std::ostringstream without;
  write_cell_json(without, cell, {.include_timing = false});
  EXPECT_EQ(without.str().find("\"wall_ms\""), std::string::npos);
}

}  // namespace
}  // namespace dircc::harness
