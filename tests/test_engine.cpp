// Event-driven engine: interleaving, barriers, locks (precise and
// region-grant), determinism and deadlock detection.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "trace/event.hpp"

namespace dircc {
namespace {

SystemConfig engine_config(int procs = 4) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(procs);
  return config;
}

ProgramTrace empty_trace(int procs) {
  ProgramTrace trace;
  trace.app_name = "test";
  trace.block_size = 16;
  trace.per_proc.assign(static_cast<std::size_t>(procs), {});
  return trace;
}

TEST(Engine, EmptyTraceFinishesAtTimeZero) {
  auto config = engine_config();
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.exec_cycles, 0u);
  EXPECT_EQ(result.protocol.accesses, 0u);
}

TEST(Engine, SerialAccessLatenciesAccumulate) {
  auto config = engine_config();
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  // Proc 1: remote read miss (60) then hit (1), each plus 1 issue cycle.
  trace.per_proc[1].push_back(TraceEvent::read(0));
  trace.per_proc[1].push_back(TraceEvent::read(0));
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.exec_cycles, (1 + 60) + (1 + 1));
}

TEST(Engine, ThinkAdvancesTime) {
  auto config = engine_config();
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  trace.per_proc[0].push_back(TraceEvent::think(100));
  Engine engine(sys, trace);
  EXPECT_EQ(engine.run().exec_cycles, 101u);
}

TEST(Engine, BarrierSynchronizesAllProcessors) {
  auto config = engine_config(2);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(2);
  // Proc 0 arrives late (think 500); proc 1 arrives immediately. Both
  // leave the barrier together.
  trace.per_proc[0].push_back(TraceEvent::think(500));
  trace.per_proc[0].push_back(TraceEvent::barrier(0));
  trace.per_proc[1].push_back(TraceEvent::barrier(0));
  trace.per_proc[1].push_back(TraceEvent::think(10));
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  // Proc 1 resumes at (last arrival 502) + barrier_cost 60, then thinks.
  EXPECT_EQ(result.sync.barrier_episodes, 1u);
  EXPECT_GE(result.exec_cycles, 502u + 60u + 10u);
  // 2 arrival requests + 2 release replies.
  EXPECT_EQ(result.sync.messages.get(MsgClass::kRequest), 2u);
  EXPECT_EQ(result.sync.messages.get(MsgClass::kReply), 2u);
}

TEST(Engine, BarrierWithIdleProcessorCompletes) {
  auto config = engine_config(4);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  // Proc 3 has no references at all: it finishes at t=0 and never arrives
  // at the barrier, so the episode must release on the three participants
  // instead of waiting for a fourth arrival that never comes.
  for (int p = 0; p < 3; ++p) {
    trace.per_proc[static_cast<std::size_t>(p)] = {
        TraceEvent::think(static_cast<std::uint32_t>(10 * (p + 1))),
        TraceEvent::barrier(0), TraceEvent::think(5)};
  }
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.barrier_episodes, 1u);
  // 3 arrival requests + 3 release replies — the idle processor sends none.
  EXPECT_EQ(result.sync.messages.get(MsgClass::kRequest), 3u);
  EXPECT_EQ(result.sync.messages.get(MsgClass::kReply), 3u);
  // Last arrival at 31, release 60 later, think 5 after that.
  EXPECT_GE(result.exec_cycles, 31u + 60u + 5u);
}

TEST(Engine, ReusedBarrierIdsFormSuccessiveEpisodes) {
  auto config = engine_config(2);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(2);
  for (int round = 0; round < 3; ++round) {
    trace.per_proc[0].push_back(TraceEvent::barrier(7));
    trace.per_proc[1].push_back(TraceEvent::barrier(7));
  }
  Engine engine(sys, trace);
  EXPECT_EQ(engine.run().sync.barrier_episodes, 3u);
}

TEST(Engine, LockProvidesMutualExclusionTiming) {
  auto config = engine_config(2);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(2);
  // Both procs do lock; hold (think 200); unlock.
  for (int p = 0; p < 2; ++p) {
    trace.per_proc[static_cast<std::size_t>(p)] = {
        TraceEvent::lock(1), TraceEvent::think(200), TraceEvent::unlock(1)};
  }
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.lock_acquires, 2u);
  EXPECT_EQ(result.sync.lock_contended, 1u);
  // The second holder cannot start its critical section before the first
  // one releases: total time covers both critical sections.
  EXPECT_GT(result.exec_cycles, 400u);
}

TEST(Engine, UncontendedLockIsCheap) {
  auto config = engine_config(2);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(2);
  trace.per_proc[0] = {TraceEvent::lock(1), TraceEvent::unlock(1)};
  trace.per_proc[1] = {TraceEvent::lock(2), TraceEvent::unlock(2)};
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.lock_contended, 0u);
  EXPECT_EQ(result.sync.lock_acquires, 2u);
}

TEST(Engine, RegionGrantWakesWholeRegionAndCountsRetries) {
  auto config = engine_config(4);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  for (int p = 0; p < 4; ++p) {
    trace.per_proc[static_cast<std::size_t>(p)] = {
        TraceEvent::lock(1), TraceEvent::think(50), TraceEvent::unlock(1)};
  }
  EngineConfig engine_cfg;
  engine_cfg.region_grant_locks = true;
  engine_cfg.lock_region_size = 4;  // all four clusters in one region
  Engine engine(sys, trace, engine_cfg);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.lock_acquires, 4u);
  // With everyone in one region, each release wakes all remaining waiters:
  // 2 losers on the first release, 1 on the second.
  EXPECT_EQ(result.sync.lock_retries, 3u);
}

TEST(Engine, PreciseGrantHasNoRetries) {
  auto config = engine_config(4);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  for (int p = 0; p < 4; ++p) {
    trace.per_proc[static_cast<std::size_t>(p)] = {
        TraceEvent::lock(1), TraceEvent::think(50), TraceEvent::unlock(1)};
  }
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.lock_retries, 0u);
}

TEST(Engine, LockAsFinalEventStillTerminates) {
  auto config = engine_config(2);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(2);
  // Proc 1 blocks on the lock as its last event; proc 0 releases. The
  // grant must retire proc 1 even though it has nothing left to run.
  trace.per_proc[0] = {TraceEvent::lock(1), TraceEvent::think(100),
                       TraceEvent::unlock(1)};
  trace.per_proc[1] = {TraceEvent::think(1), TraceEvent::lock(1)};
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_EQ(result.sync.lock_acquires, 2u);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  auto make_result = [] {
    auto config = engine_config(4);
    CoherenceSystem sys(config);
    ProgramTrace trace = empty_trace(4);
    for (int p = 0; p < 4; ++p) {
      auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
      for (int i = 0; i < 50; ++i) {
        stream.push_back(TraceEvent::read(static_cast<Addr>((p + i) % 7) * 16));
        stream.push_back(
            TraceEvent::write(static_cast<Addr>((p * i) % 5) * 16));
      }
    }
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult a = make_result();
  const RunResult b = make_result();
  EXPECT_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_EQ(a.protocol.messages.total(), b.protocol.messages.total());
  EXPECT_EQ(a.protocol.inval_distribution.total(),
            b.protocol.inval_distribution.total());
}

TEST(Engine, ContendedSharingInterleavesByTime) {
  auto config = engine_config(4);
  CoherenceSystem sys(config);
  ProgramTrace trace = empty_trace(4);
  // All four processors ping-pong writes to one block: every write after
  // the first is an ownership transfer.
  for (int round = 0; round < 5; ++round) {
    for (int p = 0; p < 4; ++p) {
      trace.per_proc[static_cast<std::size_t>(p)].push_back(
          TraceEvent::write(0));
      trace.per_proc[static_cast<std::size_t>(p)].push_back(
          TraceEvent::think(static_cast<std::uint32_t>(10 + 3 * p)));
    }
  }
  Engine engine(sys, trace);
  const RunResult result = engine.run();
  EXPECT_GT(result.protocol.ownership_transfers, 10u);
  EXPECT_EQ(result.protocol.accesses, 20u);
}

TEST(EngineDeathTest, MismatchedBarrierDeadlocks) {
  EXPECT_DEATH(
      {
        auto config = engine_config(2);
        CoherenceSystem sys(config);
        ProgramTrace trace = empty_trace(2);
        // Proc 1 participates (non-empty stream) but never reaches the
        // barrier — a genuinely malformed trace. (An *idle* processor with
        // an empty stream is legal; see BarrierWithIdleProcessorCompletes.)
        trace.per_proc[0] = {TraceEvent::barrier(0)};
        trace.per_proc[1] = {TraceEvent::think(5)};
        Engine engine(sys, trace);
        engine.run();
      },
      "deadlock");
}

TEST(EngineDeathTest, UnlockWithoutHoldAborts) {
  EXPECT_DEATH(
      {
        auto config = engine_config(2);
        CoherenceSystem sys(config);
        ProgramTrace trace = empty_trace(2);
        trace.per_proc[0] = {TraceEvent::unlock(1)};
        Engine engine(sys, trace);
        engine.run();
      },
      "unlock");
}

}  // namespace
}  // namespace dircc
