// Two-level hierarchical coherence (docs/HIERARCHY.md).
//
// Holds the PR's contract from four sides: (1) chips == 1 is byte-identical
// to the flat machine across schemes x stores x backends x engine-thread
// counts; (2) chips > 1 serves chip-local transactions without crossing the
// boundary and keeps both directory levels consistent through forwards,
// invalidation fan-outs, and writebacks; (3) the invariant oracle audits the
// cross-level invariants and catches the seeded inter-chip fault as well as
// direct intra-directory corruption; (4) the two-tier topology routes
// gateway-to-gateway.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/invariant_checker.hpp"
#include "common/json.hpp"
#include "network/hier.hpp"
#include "obs/metrics.hpp"
#include "sim/run_metrics.hpp"
#include "sim/sharded_engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig flat_machine(int procs, SchemeConfig scheme) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.block_size = 16;
  config.scheme = std::move(scheme);
  config.seed = 1990;
  return config;
}

/// 16 single-processor clusters banded into 4 chips of 4, full-map at both
/// levels unless the test overrides.
SystemConfig hier_machine(int procs = 16, int chips = 4) {
  SystemConfig config = flat_machine(procs, SchemeConfig::full(procs));
  config.hierarchy.chips = chips;
  config.hierarchy.inter = SchemeConfig::full(chips);
  config.hierarchy.intra = SchemeConfig::full(procs / chips);
  return config;
}

std::string fingerprint(const RunResult& result) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  obs::MetricsRegistry registry;
  register_metrics(registry, result);
  registry.emit_fields(json);
  json.end_object();
  return out.str();
}

// ---------------------------------------------------------------------------
// Flat equivalence: chips == 1 takes the flat code path, byte for byte
// ---------------------------------------------------------------------------

TEST(HierFlatEquivalence, Chips1IsByteIdenticalAcrossTheGrid) {
  const int procs = 16;
  const ProgramTrace trace = generate_app(AppKind::kMp3d, procs, 16, 11, 0.3);
  struct SchemeCell {
    const char* name;
    SchemeConfig scheme;
  };
  const std::vector<SchemeCell> schemes = {
      {"full", SchemeConfig::full(procs)},
      {"nb3", SchemeConfig::no_broadcast(procs, 3)},
      {"cv2", SchemeConfig::coarse(procs, 3, 2)},
  };
  for (const SchemeCell& cell : schemes) {
    for (const bool sparse : {false, true}) {
      for (const BackendKind backend :
           {BackendKind::kAnalytic, BackendKind::kQueued}) {
        SystemConfig flat = flat_machine(procs, cell.scheme);
        flat.backend = backend;
        if (sparse) {
          flat.store.sparse = true;
          flat.store.sparse_entries = 64;
        }
        CoherenceSystem flat_system(flat);
        Engine flat_engine(flat_system, trace);
        const std::string expected = fingerprint(flat_engine.run());

        // Same machine with a degenerate one-chip hierarchy attached; the
        // other hierarchy fields are deliberately nonsense — chips == 1
        // must ignore them entirely.
        SystemConfig annotated = flat;
        annotated.hierarchy.chips = 1;
        annotated.hierarchy.inter = SchemeConfig::coarse(7, 2, 2);
        annotated.hierarchy.intra = SchemeConfig::no_broadcast(3, 1);
        annotated.hierarchy.inter_store.sparse = true;
        annotated.hierarchy.inter_store.sparse_entries = 8;
        for (const int threads : {1, 3}) {
          CoherenceSystem system(annotated);
          EngineConfig engine_config;
          engine_config.engine_threads = threads;
          ShardedEngine engine(system, trace, engine_config);
          EXPECT_EQ(expected, fingerprint(engine.run()))
              << cell.name << (sparse ? "/sparse" : "/dense")
              << (backend == BackendKind::kQueued ? "/queued" : "/analytic")
              << "/threads=" << threads;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Chip-local service and cross-chip protocol actions
// ---------------------------------------------------------------------------

TEST(HierProtocol, OnChipOwnershipTransferCrossesNoChipBoundary) {
  CoherenceSystem sys(hier_machine());
  const BlockAddr block = 1;  // home cluster 1, chip 0
  sys.access(8, block, true);  // chip 2 (local 0) takes ownership via home
  const std::uint64_t boundary_after_first = sys.stats().chip_messages.total();
  EXPECT_GT(boundary_after_first, 0u);
  ASSERT_EQ(sys.stats().chip_local_transactions, 0u);

  sys.access(9, block, true);  // chip 2 (local 1): served entirely on-chip
  EXPECT_EQ(sys.stats().chip_local_transactions, 1u);
  EXPECT_EQ(sys.stats().chip_messages.total(), boundary_after_first);
  EXPECT_EQ(sys.cache(8).probe(block), LineState::kInvalid);
  EXPECT_EQ(sys.cache(9).probe(block), LineState::kModified);

  // Inter level still says Dirty at chip 2; intra level tracked the local
  // ownership move to local cluster 1.
  const DirEntry* inter = sys.peek_entry(block);
  ASSERT_NE(inter, nullptr);
  EXPECT_EQ(inter->state_of(0), DirState::kDirty);
  EXPECT_EQ(inter->owner_of(0), 2);
  const DirEntry* intra = sys.peek_intra_entry(2, block);
  ASSERT_NE(intra, nullptr);
  EXPECT_EQ(intra->state_of(0), DirState::kDirty);
  EXPECT_EQ(intra->owner_of(0), 1);
}

TEST(HierProtocol, CrossChipReadOfDirtyDemotesBothLevels) {
  CoherenceSystem sys(hier_machine());
  const BlockAddr block = 1;
  sys.access(9, block, true);   // chip 2 owns Modified
  sys.access(0, block, false);  // chip 0 reads: forward + sharing writeback
  EXPECT_EQ(sys.stats().sharing_writebacks, 1u);
  EXPECT_EQ(sys.cache(9).probe(block), LineState::kShared);
  EXPECT_EQ(sys.cache(0).probe(block), LineState::kShared);

  const DirEntry* inter = sys.peek_entry(block);
  ASSERT_NE(inter, nullptr);
  EXPECT_EQ(inter->state_of(0), DirState::kShared);
  EXPECT_TRUE(sys.format().maybe_sharer(inter->sharers, 0));
  EXPECT_TRUE(sys.format().maybe_sharer(inter->sharers, 2));
  const DirEntry* intra0 = sys.peek_intra_entry(0, block);
  ASSERT_NE(intra0, nullptr);
  EXPECT_EQ(intra0->state_of(0), DirState::kShared);
  EXPECT_TRUE(sys.intra_format().maybe_sharer(intra0->sharers, 0));
  const DirEntry* intra2 = sys.peek_intra_entry(2, block);
  ASSERT_NE(intra2, nullptr);
  EXPECT_EQ(intra2->state_of(0), DirState::kShared);
  EXPECT_TRUE(sys.intra_format().maybe_sharer(intra2->sharers, 1));
}

TEST(HierProtocol, WriteFansInvalidationsOutAcrossChips) {
  CoherenceSystem sys(hier_machine());
  const BlockAddr block = 2;
  for (const ProcId reader : {1, 4, 8}) {  // chips 0, 1, 2
    sys.access(reader, block, false);
  }
  sys.access(12, block, true);  // chip 3 writes
  for (const ProcId reader : {1, 4, 8}) {
    EXPECT_EQ(sys.cache(reader).probe(block), LineState::kInvalid);
  }
  EXPECT_EQ(sys.cache(12).probe(block), LineState::kModified);

  const DirEntry* inter = sys.peek_entry(block);
  ASSERT_NE(inter, nullptr);
  EXPECT_EQ(inter->state_of(0), DirState::kDirty);
  EXPECT_EQ(inter->owner_of(0), 3);
  // The losing chips' intra entries are gone; the winner's names local 0.
  EXPECT_EQ(sys.peek_intra_entry(0, block), nullptr);
  EXPECT_EQ(sys.peek_intra_entry(1, block), nullptr);
  EXPECT_EQ(sys.peek_intra_entry(2, block), nullptr);
  const DirEntry* intra3 = sys.peek_intra_entry(3, block);
  ASSERT_NE(intra3, nullptr);
  EXPECT_EQ(intra3->state_of(0), DirState::kDirty);
  // One write event, four invalidation-carrying hops: one chip leg to each
  // of the three sharer chips' gateways, plus one local hop on chip 0 whose
  // copy (cluster 1) sits off its gateway. Chips 1 and 2 hold their copy at
  // the gateway itself, so the chip leg is the entire path.
  EXPECT_EQ(sys.stats().inval_distribution.total(), 4u);
  EXPECT_GT(sys.stats().chip_messages.get(MsgClass::kInvalidation), 0u);
}

TEST(HierProtocol, IntraPointerDisplacementInvalidatesTheOldLocalCopy) {
  // One-pointer no-broadcast intra level: a second on-chip sharer displaces
  // the first even though the inter level (full map over chips) is precise.
  SystemConfig config = hier_machine();
  config.hierarchy.intra = SchemeConfig::no_broadcast(4, 1);
  CoherenceSystem sys(config);
  const BlockAddr block = 1;  // home on chip 0
  sys.access(8, block, false);
  sys.access(9, block, false);  // same chip: displaces local cluster 0
  EXPECT_EQ(sys.cache(8).probe(block), LineState::kInvalid);
  EXPECT_EQ(sys.cache(9).probe(block), LineState::kShared);
  const DirEntry* inter = sys.peek_entry(block);
  ASSERT_NE(inter, nullptr);
  EXPECT_TRUE(sys.format().maybe_sharer(inter->sharers, 2));
}

TEST(HierProtocol, DirtyEvictionWritesBackThroughBothLevels) {
  // Two-line direct-ish caches force the dirty line out quickly.
  SystemConfig config = hier_machine();
  config.cache_lines_per_proc = 2;
  config.cache_assoc = 1;
  CoherenceSystem sys(config);
  const BlockAddr block = 1;
  sys.access(9, block, true);  // chip 2 owns Modified
  // Conflicting fills (same cache set) evict the dirty line.
  sys.access(9, block + 32, false);
  sys.access(9, block + 64, false);
  EXPECT_EQ(sys.cache(9).probe(block), LineState::kInvalid);
  EXPECT_EQ(sys.stats().dirty_eviction_writebacks, 1u);
  // The writeback retired the entry at both levels.
  EXPECT_EQ(sys.peek_entry(block), nullptr);
  EXPECT_EQ(sys.peek_intra_entry(2, block), nullptr);
  EXPECT_GT(sys.stats().chip_messages.get(MsgClass::kWriteback), 0u);
}

// ---------------------------------------------------------------------------
// Oracle: clean runs across app traces, seeded fault, direct corruption
// ---------------------------------------------------------------------------

check::FuzzTraceConfig hier_fuzz_trace(int procs) {
  check::FuzzTraceConfig tc;
  tc.procs = procs;
  tc.rounds = 2;
  tc.units_per_round = 30;
  tc.hot_blocks = 4;
  tc.pool_blocks = 64;
  tc.seed = 7;
  return tc;
}

TEST(HierChecker, AppTracesRunCleanUnderTheOracle) {
  if (!check::compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  // App traces run long; a periodic audit (plus the mandatory final sweep
  // in finish()) keeps the oracle O(trace) instead of O(trace^2).
  check::CheckConfig check_config;
  check_config.audit_interval = 2000;
  for (const AppKind app :
       {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d, AppKind::kLocusRoute}) {
    const check::CheckedRun run = check::run_checked(
        hier_machine(), EngineConfig{}, generate_app(app, 16, 16, 23, 0.1),
        check_config);
    EXPECT_FALSE(run.report.failed())
        << app_name(app) << ": "
        << violation_to_string(run.report.violations.front());
  }
}

TEST(HierChecker, StressConfigsRunCleanUnderTheOracle) {
  if (!check::compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  // Tiny caches + sparse/limited levels: constant evictions, intra and
  // inter victimizations, displacement invalidations.
  std::vector<SystemConfig> configs;
  {
    SystemConfig c = hier_machine();
    c.cache_lines_per_proc = 8;
    c.cache_assoc = 2;
    c.hierarchy.inter = SchemeConfig::coarse(4, 1, 2);
    c.hierarchy.inter_store.sparse = true;
    c.hierarchy.inter_store.sparse_entries = 8;
    configs.push_back(c);
  }
  {
    SystemConfig c = hier_machine();
    c.cache_lines_per_proc = 8;
    c.cache_assoc = 2;
    c.hierarchy.intra = SchemeConfig::no_broadcast(4, 1);
    c.hierarchy.intra_store.sparse = true;
    c.hierarchy.intra_store.sparse_entries = 16;
    configs.push_back(c);
  }
  {
    SystemConfig c = hier_machine(32, 4);  // 8 clusters per chip
    c.procs_per_cluster = 2;               // 16 clusters, 2 procs each
    c.hierarchy.intra = SchemeConfig::full(4);
    c.cache_lines_per_proc = 8;
    c.cache_assoc = 2;
    c.backend = BackendKind::kQueued;
    configs.push_back(c);
  }
  int cell = 0;
  for (const SystemConfig& config : configs) {
    const check::CheckedRun run = check::run_checked(
        config, EngineConfig{},
        check::generate_fuzz_trace(hier_fuzz_trace(config.num_procs)));
    EXPECT_FALSE(run.report.failed())
        << "config " << cell << ": "
        << violation_to_string(run.report.violations.front());
    ++cell;
  }
}

TEST(HierChecker, SeededForgetChipSharerIsCaught) {
  if (!check::compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  SystemConfig config = hier_machine();
  config.cache_lines_per_proc = 8;
  config.cache_assoc = 2;
  config.validate = false;  // the seeded run corrupts state on purpose
  config.fault.kind = check::FaultKind::kForgetChipSharer;
  config.fault.trigger = 1;
  const check::CheckedRun run = check::run_checked(
      config, EngineConfig{}, check::generate_fuzz_trace(hier_fuzz_trace(16)));
  EXPECT_EQ(run.report.faults_injected, 1u);
  ASSERT_TRUE(run.report.failed());
  bool chip_kind = false;
  for (const check::Violation& violation : run.report.violations) {
    chip_kind = chip_kind ||
                violation.kind == check::ViolationKind::kChipUncovered ||
                violation.kind == check::ViolationKind::kChipCleanDirty;
  }
  EXPECT_TRUE(chip_kind)
      << violation_to_string(run.report.violations.front());
  EXPECT_TRUE(run.report.halted);
}

TEST(HierChecker, FlagsDirectIntraDirectoryCorruption) {
  if (!check::compiled()) {
    GTEST_SKIP() << "checking compiled out (DIRCC_CHECK=0)";
  }
  CoherenceSystem sys(hier_machine());
  const BlockAddr block = 1;
  sys.access(8, block, false);  // chip 2 caches Shared, both levels track it
  // Corrupt: chip 2's intra directory drops its entry outright.
  sys.intra_directory_for_test(2).find(block)->reset();
  sys.intra_directory_for_test(2).release(block);

  check::InvariantChecker checker(sys, check::CheckConfig{});
  checker.audit(10);
  const check::CheckReport& report = checker.finish(false);
  ASSERT_TRUE(report.failed());
  bool found = false;
  for (const check::Violation& violation : report.violations) {
    found = found || violation.kind == check::ViolationKind::kChipUncovered;
  }
  EXPECT_TRUE(found) << violation_to_string(report.violations.front());
}

// ---------------------------------------------------------------------------
// Sharded-engine determinism on a hierarchical machine
// ---------------------------------------------------------------------------

TEST(HierSharded, ByteIdenticalAcrossThreadCounts) {
  SystemConfig config = hier_machine();
  const ProgramTrace trace = generate_app(AppKind::kLu, 16, 16, 5, 0.2);
  CoherenceSystem serial_system(config);
  Engine serial(serial_system, trace);
  const std::string expected = fingerprint(serial.run());
  for (const int threads : {2, 4, 8}) {
    CoherenceSystem system(config);
    EngineConfig engine_config;
    engine_config.engine_threads = threads;
    ShardedEngine sharded(system, trace, engine_config);
    EXPECT_EQ(expected, fingerprint(sharded.run()))
        << "engine_threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Two-tier topology
// ---------------------------------------------------------------------------

TEST(HierTopologyTest, RoutesGatewayToGateway) {
  const HierTopology topo(4, 4);
  EXPECT_EQ(topo.num_nodes(), 16);
  EXPECT_EQ(topo.chip_of(9), 2);
  EXPECT_EQ(topo.local_of(9), 1);
  EXPECT_EQ(topo.gateway(2), 8);
  // Same chip: plain intra-mesh distance, no inter-chip legs.
  const MeshTopology intra(4);
  EXPECT_EQ(topo.hops(8, 9), intra.hops(0, 1));
  // Cross-chip: source -> its gateway, chip mesh, gateway -> destination.
  const MeshTopology chip_mesh(4);
  EXPECT_EQ(topo.hops(1, 9),
            intra.hops(1, 0) + chip_mesh.hops(0, 2) + intra.hops(0, 1));
  for (NodeId a = 0; a < 16; ++a) {
    EXPECT_EQ(topo.hops(a, a), 0);
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
      EXPECT_LE(topo.hops(a, b), topo.diameter());
    }
  }
}

TEST(HierTopologyTest, LinkRoutesMatchHopCounts) {
  const HierTopology topo(4, 4);
  std::vector<LinkId> links;
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      links.clear();  // route_links appends by contract
      topo.route_links(a, b, &links);
      EXPECT_EQ(static_cast<int>(links.size()), topo.hops(a, b))
          << "route " << a << " -> " << b;
      for (const LinkId link : links) {
        EXPECT_LT(static_cast<int>(link), topo.num_links());
        EXPECT_FALSE(topo.link_name(link).empty());
      }
    }
  }
}

}  // namespace
}  // namespace dircc
