// Two-level cache hierarchy: write-through L1 over the coherence-point L2
// (the DASH primary/secondary split of Section 5), with inclusion.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig two_level_config(int procs = 4) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.l1_lines_per_proc = 8;
  config.l1_assoc = 2;
  config.scheme = SchemeConfig::full(procs);
  return config;
}

TEST(TwoLevel, ReadLatencyTiersL1L2Remote) {
  CoherenceSystem sys(two_level_config());
  const Cycle miss = sys.access(1, 0, false);  // remote fill
  EXPECT_EQ(miss, sys.config().latency.remote_2cluster);
  const Cycle l1 = sys.access(1, 0, false);  // L1 hit
  EXPECT_EQ(l1, sys.config().latency.cache_hit);
  // Push the block out of the tiny L1 (8 lines, 2-way: 4 sets; blocks 0,
  // 8, 16 collide in set 0) but keep it in the L2.
  sys.access(1, 8, false);
  sys.access(1, 16, false);
  ASSERT_EQ(sys.l1_cache(1).probe(0), LineState::kInvalid);
  ASSERT_EQ(sys.cache(1).probe(0), LineState::kShared);
  const Cycle l2 = sys.access(1, 0, false);
  EXPECT_EQ(l2, sys.config().latency.l2_hit);
}

TEST(TwoLevel, SingleLevelKeepsOldLatency) {
  SystemConfig config = two_level_config();
  config.l1_lines_per_proc = 0;
  CoherenceSystem sys(config);
  sys.access(1, 0, false);
  EXPECT_EQ(sys.access(1, 0, false), sys.config().latency.cache_hit);
  EXPECT_FALSE(sys.two_level());
}

TEST(TwoLevel, InvalidationKillsBothLevels) {
  CoherenceSystem sys(two_level_config());
  sys.access(1, 0, false);
  ASSERT_EQ(sys.l1_cache(1).probe(0), LineState::kShared);
  sys.access(2, 0, true);  // remote write invalidates cluster 1
  EXPECT_EQ(sys.l1_cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  // A re-read misses all the way to the directory and sees the new value.
  sys.access(1, 0, false);
  EXPECT_EQ(sys.l1_cache(1).version_of(0), 1u);
}

TEST(TwoLevel, WriteThroughRefreshesTheWritersL1) {
  CoherenceSystem sys(two_level_config());
  sys.access(1, 0, false);  // L1 + L2 copies, version 0
  sys.access(1, 0, true);   // upgrade; write-through updates L1
  ASSERT_EQ(sys.l1_cache(1).probe(0), LineState::kShared);
  EXPECT_EQ(sys.l1_cache(1).version_of(0), 1u);
  // The L1 hit after the write observes the fresh version (validated).
  EXPECT_EQ(sys.access(1, 0, false), sys.config().latency.cache_hit);
}

TEST(TwoLevel, RepeatedWritesPayTheL2WriteThrough) {
  CoherenceSystem sys(two_level_config());
  sys.access(1, 0, true);
  const Cycle write_hit = sys.access(1, 0, true);
  EXPECT_EQ(write_hit, sys.config().latency.l2_hit);
}

TEST(TwoLevel, L2EvictionMaintainsInclusion) {
  SystemConfig config = two_level_config();
  config.cache_lines_per_proc = 4;
  config.cache_assoc = 1;  // L2: blocks 0 and 4 conflict
  config.l1_lines_per_proc = 4;
  config.l1_assoc = 4;     // L1 fully associative: would keep both
  CoherenceSystem sys(config);
  sys.access(1, 0, false);
  ASSERT_EQ(sys.l1_cache(1).probe(0), LineState::kShared);
  sys.access(1, 4, false);  // L2 displaces block 0
  EXPECT_EQ(sys.cache(1).probe(0), LineState::kInvalid);
  EXPECT_EQ(sys.l1_cache(1).probe(0), LineState::kInvalid)
      << "inclusion violated: L1 kept a line the L2 displaced";
}

TEST(TwoLevel, RandomTrafficStaysCoherent) {
  // Version validation runs on every L1 hit; any stale L1 line aborts.
  SystemConfig config = two_level_config(8);
  config.scheme = SchemeConfig::coarse(8, 2, 2);
  CoherenceSystem sys(config);
  Rng rng(0x11ca);
  for (int i = 0; i < 20000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(8)),
               static_cast<BlockAddr>(rng.below(48)), rng.chance(0.3));
  }
  // L1 subset invariant at the end.
  for (int p = 0; p < 8; ++p) {
    for (BlockAddr b = 0; b < 48; ++b) {
      if (sys.l1_cache(static_cast<ProcId>(p)).probe(b) !=
          LineState::kInvalid) {
        EXPECT_NE(sys.cache(static_cast<ProcId>(p)).probe(b),
                  LineState::kInvalid)
            << "L1 holds block " << b << " the L2 does not";
      }
    }
  }
}

TEST(TwoLevel, ClusteredModeWorksWithL1s) {
  SystemConfig config = two_level_config(8);
  config.procs_per_cluster = 4;
  config.scheme = SchemeConfig::full(2);
  CoherenceSystem sys(config);
  Rng rng(0x11cb);
  for (int i = 0; i < 10000; ++i) {
    sys.access(static_cast<ProcId>(rng.below(8)),
               static_cast<BlockAddr>(rng.below(32)), rng.chance(0.3));
  }
  EXPECT_GT(sys.stats().local_transactions, 0u);
}

TEST(TwoLevel, EndToEndAppRunBenefitsFromL1) {
  const ProgramTrace trace = generate_app(AppKind::kDwf, 16, 16, 3, 0.1);
  auto run = [&](std::uint64_t l1_lines) {
    SystemConfig config;
    config.num_procs = 16;
    config.cache_lines_per_proc = 512;
    config.cache_assoc = 4;
    config.l1_lines_per_proc = l1_lines;
    config.scheme = SchemeConfig::full(16);
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult without = run(0);
  const RunResult with = run(64);
  // Same messages (the L1 is invisible to the protocol)...
  EXPECT_EQ(with.protocol.messages.total(),
            without.protocol.messages.total());
  // ...same execution time too, since single-level machines already charge
  // cache_hit for every hit; the L1 matters once L2 hits cost l2_hit.
  auto run_slow_l2 = [&](std::uint64_t l1_lines) {
    SystemConfig config;
    config.num_procs = 16;
    config.cache_lines_per_proc = 512;
    config.cache_assoc = 4;
    config.l1_lines_per_proc = l1_lines;
    config.latency.l2_hit = 8;
    config.scheme = SchemeConfig::full(16);
    CoherenceSystem sys(config);
    Engine engine(sys, trace);
    return engine.run();
  };
  const RunResult small_l1 = run_slow_l2(16);
  const RunResult big_l1 = run_slow_l2(256);
  EXPECT_LT(big_l1.exec_cycles, small_l1.exec_cycles);
}

}  // namespace
}  // namespace dircc
