// CliParser and TextTable formatting utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"

namespace dircc {
namespace {

CliParser make_parser() {
  CliParser cli;
  cli.add_option("app", "mp3d", "workload");
  cli.add_option("procs", "32", "processors");
  cli.add_option("scale", "0.5", "scale");
  cli.add_flag("sparse", "sparse directory");
  return cli;
}

TEST(CliParser, DefaultsApplyWhenUnset) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("app"), "mp3d");
  EXPECT_EQ(cli.get_int("procs"), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
  EXPECT_FALSE(cli.get_flag("sparse"));
}

TEST(CliParser, ParsesSpaceAndEqualsForms) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--app", "lu", "--procs=16", "--sparse"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("app"), "lu");
  EXPECT_EQ(cli.get_int("procs"), 16);
  EXPECT_TRUE(cli.get_flag("sparse"));
}

TEST(CliParser, RejectsUnknownOption) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(CliParser, RejectsDuplicateOption) {
  // A repeated option used to silently overwrite the earlier value; a grid
  // driver invoked with `--schemes full --schemes cv` would quietly drop
  // half the sweep. Duplicates (of options or flags, in either form) are a
  // parse error naming the offender.
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--app", "lu", "--app", "mp3d"};
  EXPECT_FALSE(cli.parse(5, argv));
  EXPECT_NE(cli.error().find("--app"), std::string::npos) << cli.error();
  EXPECT_NE(cli.error().find("more than once"), std::string::npos)
      << cli.error();

  CliParser equals = make_parser();
  const char* eq_argv[] = {"prog", "--procs=16", "--procs=8"};
  EXPECT_FALSE(equals.parse(3, eq_argv));

  CliParser flags = make_parser();
  const char* flag_argv[] = {"prog", "--sparse", "--sparse"};
  EXPECT_FALSE(flags.parse(3, flag_argv));
}

TEST(CliParser, RejectsMissingValue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--app"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, RejectsValueOnFlag) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--sparse=yes"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, RejectsPositional) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, HelpShortCircuits) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--app"), std::string::npos);
  EXPECT_NE(usage.find("--sparse"), std::string::npos);
}

// Regression: the typed accessors used to strtoll/strtod with a null end
// pointer, so "--procs=abc" silently became 0 processors and "--scale=1.5x"
// became 1.5. The whole token must parse or the accessor throws.
TEST(CliParser, GetIntRejectsNonNumericValue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--procs=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("procs"), CliError);
}

TEST(CliParser, GetIntRejectsTrailingGarbage) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--procs=32x"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("procs"), CliError);
}

TEST(CliParser, GetIntRejectsEmptyValue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--procs="};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("procs"), CliError);
}

TEST(CliParser, GetIntRejectsOverflow) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--procs=99999999999999999999999"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("procs"), CliError);
}

TEST(CliParser, GetIntAcceptsNegative) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--procs=-4"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("procs"), -4);
}

TEST(CliParser, GetDoubleRejectsTrailingGarbage) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--scale=1.5x"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_double("scale"), CliError);
}

TEST(CliParser, GetDoubleRejectsNonNumericValue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--scale=fast"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_double("scale"), CliError);
}

TEST(CliParser, GetDoubleAcceptsScientificNotation) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--scale=2.5e-1"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.25);
}

TEST(CliParser, CliErrorNamesOptionAndValue) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--procs=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  try {
    cli.get_int("procs");
    FAIL() << "expected CliError";
  } catch (const CliError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--procs"), std::string::npos);
    EXPECT_NE(what.find("abc"), std::string::npos);
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.header({"a", "long-column"});
  table.row({"value-1", "x"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header, rule, one row.
  EXPECT_NE(text.find("| a       | long-column |"), std::string::npos);
  EXPECT_NE(text.find("| value-1 | x           |"), std::string::npos);
  EXPECT_NE(text.find("+---------+-------------+"), std::string::npos);
}

TEST(TextTable, HandlesShortRows) {
  TextTable table;
  table.header({"a", "b", "c"});
  table.row({"1"});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("| 1 |"), std::string::npos);
}

TEST(Fmt, FormatsDoublesAndCounts) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace dircc
