// Mesh topology, message accounting and the latency model.
#include <gtest/gtest.h>

#include "network/latency.hpp"
#include "network/mesh.hpp"
#include "network/message.hpp"

namespace dircc {
namespace {

TEST(Mesh, FactorsMostSquare) {
  MeshTopology m16(16);
  EXPECT_EQ(m16.width() * m16.height(), 16);
  EXPECT_EQ(m16.width(), 4);
  EXPECT_EQ(m16.height(), 4);

  MeshTopology m32(32);
  EXPECT_EQ(m32.width() * m32.height(), 32);
  EXPECT_EQ(m32.width(), 8);
  EXPECT_EQ(m32.height(), 4);
}

TEST(Mesh, HopsAreManhattan) {
  MeshTopology mesh(4, 4);
  EXPECT_EQ(mesh.hops(0, 0), 0);
  EXPECT_EQ(mesh.hops(0, 3), 3);   // same row
  EXPECT_EQ(mesh.hops(0, 12), 3);  // same column
  EXPECT_EQ(mesh.hops(0, 15), 6);  // opposite corner = diameter
  EXPECT_EQ(mesh.hops(5, 10), 2);
  EXPECT_EQ(mesh.diameter(), 6);
}

TEST(Mesh, HopsAreSymmetric) {
  MeshTopology mesh(8, 4);
  for (NodeId a = 0; a < 32; a += 5) {
    for (NodeId b = 0; b < 32; b += 7) {
      EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
  }
}

TEST(Mesh, SingleNodeDegenerate) {
  MeshTopology mesh(1);
  EXPECT_EQ(mesh.hops(0, 0), 0);
  EXPECT_EQ(mesh.diameter(), 0);
}

TEST(MessageCounters, AddsAndTotals) {
  MessageCounters counters;
  counters.add(MsgClass::kRequest, 3);
  counters.add(MsgClass::kReply, 2);
  counters.add(MsgClass::kInvalidation);
  counters.add(MsgClass::kAck);
  counters.add(MsgClass::kWriteback, 5);
  EXPECT_EQ(counters.total(), 12u);
  EXPECT_EQ(counters.requests_with_writebacks(), 8u);
  EXPECT_EQ(counters.inv_plus_ack(), 2u);
}

TEST(MessageCounters, MergeCombines) {
  MessageCounters a;
  MessageCounters b;
  a.add(MsgClass::kRequest);
  b.add(MsgClass::kRequest, 2);
  b.add(MsgClass::kAck);
  a.merge(b);
  EXPECT_EQ(a.get(MsgClass::kRequest), 3u);
  EXPECT_EQ(a.get(MsgClass::kAck), 1u);
}

TEST(MsgClassName, Covers) {
  EXPECT_STREQ(msg_class_name(MsgClass::kRequest), "request");
  EXPECT_STREQ(msg_class_name(MsgClass::kWriteback), "writeback");
}

TEST(LatencyModel, PaperCalibratedDefaults) {
  LatencyModel lat;
  EXPECT_EQ(lat.transaction(1, 0), 23u);
  EXPECT_EQ(lat.transaction(2, 4), 60u);
  EXPECT_EQ(lat.transaction(3, 6), 80u);
}

TEST(LatencyModel, PerHopTermScalesWithDistance) {
  LatencyModel lat;
  lat.per_hop = 2;
  EXPECT_EQ(lat.transaction(2, 4), 60u + 8u);
  EXPECT_EQ(lat.transaction(3, 10), 80u + 20u);
}

}  // namespace
}  // namespace dircc
