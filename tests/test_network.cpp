// Mesh topology, message accounting and the latency model.
#include <gtest/gtest.h>

#include "network/latency.hpp"
#include "network/mesh.hpp"
#include "network/message.hpp"

namespace dircc {
namespace {

TEST(Mesh, FactorsMostSquare) {
  MeshTopology m16(16);
  EXPECT_EQ(m16.width() * m16.height(), 16);
  EXPECT_EQ(m16.width(), 4);
  EXPECT_EQ(m16.height(), 4);

  MeshTopology m32(32);
  EXPECT_EQ(m32.width() * m32.height(), 32);
  EXPECT_EQ(m32.width(), 8);
  EXPECT_EQ(m32.height(), 4);
}

TEST(Mesh, HopsAreManhattan) {
  MeshTopology mesh(4, 4);
  EXPECT_EQ(mesh.hops(0, 0), 0);
  EXPECT_EQ(mesh.hops(0, 3), 3);   // same row
  EXPECT_EQ(mesh.hops(0, 12), 3);  // same column
  EXPECT_EQ(mesh.hops(0, 15), 6);  // opposite corner = diameter
  EXPECT_EQ(mesh.hops(5, 10), 2);
  EXPECT_EQ(mesh.diameter(), 6);
}

TEST(Mesh, HopsAreSymmetric) {
  MeshTopology mesh(8, 4);
  for (NodeId a = 0; a < 32; a += 5) {
    for (NodeId b = 0; b < 32; b += 7) {
      EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
  }
}

TEST(Mesh, SingleNodeDegenerate) {
  MeshTopology mesh(1);
  EXPECT_EQ(mesh.hops(0, 0), 0);
  EXPECT_EQ(mesh.diameter(), 0);
}

TEST(Mesh, NumLinksCountsDirectedChannels) {
  // 4x2: (w-1)*h = 6 east + 6 west, w*(h-1) = 4 south + 4 north.
  EXPECT_EQ(MeshTopology(4, 2).num_links(), 20);
  EXPECT_EQ(MeshTopology(1, 1).num_links(), 0);
  EXPECT_EQ(MeshTopology(8, 4).num_links(), 2 * 28 + 2 * 24);
}

TEST(Mesh, RouteLinksAreDimensionOrdered) {
  MeshTopology mesh(4, 2);
  std::vector<LinkId> links;
  // (0,0) -> (1,1): east link 0 of row 0, then south below row 0 at x=1.
  mesh.route_links(0, 5, &links);
  EXPECT_EQ(links, (std::vector<LinkId>{0, 13}));
  links.clear();
  // The reverse path uses the west and north twins, not the same ids.
  mesh.route_links(5, 0, &links);
  EXPECT_EQ(links, (std::vector<LinkId>{9, 16}));
  links.clear();
  mesh.route_links(0, 3, &links);
  EXPECT_EQ(links, (std::vector<LinkId>{0, 1, 2}));
  links.clear();
  mesh.route_links(2, 2, &links);
  EXPECT_TRUE(links.empty());
}

TEST(Mesh, RouteLinksMatchHopCountsAndStayInRange) {
  MeshTopology mesh(8, 4);
  std::vector<LinkId> links;
  for (NodeId a = 0; a < 32; ++a) {
    for (NodeId b = 0; b < 32; ++b) {
      links.clear();
      mesh.route_links(a, b, &links);
      EXPECT_EQ(static_cast<int>(links.size()), mesh.hops(a, b));
      for (const LinkId link : links) {
        EXPECT_GE(link, 0);
        EXPECT_LT(link, mesh.num_links());
      }
    }
  }
}

TEST(MessageCounters, AddsAndTotals) {
  MessageCounters counters;
  counters.add(MsgClass::kRequest, 3);
  counters.add(MsgClass::kReply, 2);
  counters.add(MsgClass::kInvalidation);
  counters.add(MsgClass::kAck);
  counters.add(MsgClass::kWriteback, 5);
  EXPECT_EQ(counters.total(), 12u);
  EXPECT_EQ(counters.requests_with_writebacks(), 8u);
  EXPECT_EQ(counters.inv_plus_ack(), 2u);
}

TEST(MessageCounters, PlusEqualsCombines) {
  MessageCounters a;
  MessageCounters b;
  a.add(MsgClass::kRequest);
  b.add(MsgClass::kRequest, 2);
  b.add(MsgClass::kAck);
  a += b;
  EXPECT_EQ(a.get(MsgClass::kRequest), 3u);
  EXPECT_EQ(a.get(MsgClass::kAck), 1u);
}

TEST(MsgClassName, Covers) {
  EXPECT_STREQ(msg_class_name(MsgClass::kRequest), "request");
  EXPECT_STREQ(msg_class_name(MsgClass::kWriteback), "writeback");
}

TEST(LatencyModel, PaperCalibratedDefaults) {
  LatencyModel lat;
  EXPECT_EQ(lat.transaction(1, 0), 23u);
  EXPECT_EQ(lat.transaction(2, 4), 60u);
  EXPECT_EQ(lat.transaction(3, 6), 80u);
}

TEST(LatencyModel, PerHopTermScalesWithDistance) {
  LatencyModel lat;
  lat.per_hop = 2;
  EXPECT_EQ(lat.transaction(2, 4), 60u + 8u);
  EXPECT_EQ(lat.transaction(3, 10), 80u + 20u);
}

}  // namespace
}  // namespace dircc
