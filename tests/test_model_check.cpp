// Exhaustive guarded-action model checker (src/check/model).
//
// Clean configurations must explore to exhaustion with zero violations and
// full action-kind coverage; each seeded fault must be caught with a
// counterexample whose emitted trace reproduces the violation under the
// plain engine (the replay contract docs/MODELCHECK.md promises).
#include <gtest/gtest.h>

#include "check/api.hpp"
#include "check/model/explorer.hpp"
#include "check/model/guarded_action.hpp"
#include "check/model/state_codec.hpp"

namespace dircc::check::model {
namespace {

ModelConfig dense_config(const std::string& scheme) {
  ModelConfig config;
  config.scheme = scheme;
  return config;  // 2 procs, 1 block, dense, flat
}

ModelConfig fault_config(FaultKind kind) {
  ModelConfig config;
  config.fault.kind = kind;
  config.fault.trigger = 1;
  switch (kind) {
    case FaultKind::kDropVictimWriteback:
      // Victimization needs two same-home blocks contending for one
      // direct-mapped sparse entry.
      config.blocks = 2;
      config.layout = BlockLayout::kSameHome;
      config.sparse = true;
      config.sparse_entries = 1;
      break;
    case FaultKind::kForgetChipSharer:
      config.procs = 4;
      config.chips = 2;
      break;
    default:
      break;
  }
  return config;
}

TEST(ModelCheck, CleanExplorationEverySchemeDense) {
  for (const std::string& scheme : {"full", "cv", "b", "nb"}) {
    const ModelConfig config = dense_config(scheme);
    ASSERT_EQ(validate(config), "") << scheme;
    const ExploreResult result = explore(config);
    EXPECT_FALSE(result.counterexample.has_value())
        << scheme << ": " << result.counterexample->detail;
    EXPECT_TRUE(result.exhausted) << scheme;
    EXPECT_TRUE(result.all_kinds_covered()) << scheme;
    EXPECT_GT(result.states, 1u) << scheme;
    EXPECT_GT(result.transitions, result.states - 1) << scheme;
  }
}

TEST(ModelCheck, CleanExplorationSparseWithVictimization) {
  for (const std::string& scheme : {"full", "b"}) {
    ModelConfig config = dense_config(scheme);
    config.blocks = 2;
    config.layout = BlockLayout::kSameHome;
    config.sparse = true;
    config.sparse_entries = 1;  // < blocks: every miss can victimize
    ASSERT_EQ(validate(config), "") << scheme;
    const ExploreResult result = explore(config);
    EXPECT_FALSE(result.counterexample.has_value())
        << scheme << ": " << result.counterexample->detail;
    EXPECT_TRUE(result.exhausted) << scheme;
    EXPECT_TRUE(result.all_kinds_covered()) << scheme;
  }
}

TEST(ModelCheck, CleanExplorationTwoChips) {
  for (const std::string& scheme : {"full", "nb"}) {
    ModelConfig config = dense_config(scheme);
    config.procs = 4;
    config.chips = 2;
    ASSERT_EQ(validate(config), "") << scheme;
    const ExploreResult result = explore(config);
    EXPECT_FALSE(result.counterexample.has_value())
        << scheme << ": " << result.counterexample->detail;
    EXPECT_TRUE(result.exhausted) << scheme;
    EXPECT_TRUE(result.all_kinds_covered()) << scheme;
  }
}

TEST(ModelCheck, ExplorationIsDeterministic) {
  const ModelConfig config = dense_config("cv");
  const ExploreResult a = explore(config);
  const ExploreResult b = explore(config);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.kind_transitions, b.kind_transitions);
}

TEST(ModelCheck, EncodingStableAndDiscriminating) {
  const ModelConfig config = dense_config("full");
  CoherenceSystem first(build_system(config));
  CoherenceSystem second(build_system(config));
  EXPECT_EQ(encode_state(first, config), encode_state(second, config));
  second.access(0, model_block(config, 0), /*is_write=*/true, 0);
  EXPECT_NE(encode_state(first, config), encode_state(second, config));
}

TEST(ModelCheck, GuardsPartitionInitialAndPostAccessStates) {
  const ModelConfig config = dense_config("full");
  CoherenceSystem system(build_system(config));
  const BlockAddr block = model_block(config, 0);
  ActionKind kind = ActionKind::kReadHit;
  ASSERT_EQ(count_enabled(system, 0, block, /*is_write=*/false, &kind), 1);
  EXPECT_EQ(kind, ActionKind::kReadMissUncached);
  ASSERT_EQ(count_enabled(system, 0, block, /*is_write=*/true, &kind), 1);
  EXPECT_EQ(kind, ActionKind::kWriteMissUncached);

  system.access(0, block, /*is_write=*/true, 0);
  ASSERT_EQ(count_enabled(system, 0, block, /*is_write=*/false, &kind), 1);
  EXPECT_EQ(kind, ActionKind::kReadHit);
  ASSERT_EQ(count_enabled(system, 0, block, /*is_write=*/true, &kind), 1);
  EXPECT_EQ(kind, ActionKind::kWriteHitModified);
  ASSERT_EQ(count_enabled(system, 1, block, /*is_write=*/false, &kind), 1);
  EXPECT_EQ(kind, ActionKind::kReadMissDirty);
  ASSERT_EQ(count_enabled(system, 1, block, /*is_write=*/true, &kind), 1);
  EXPECT_EQ(kind, ActionKind::kWriteMissDirty);
}

/// The provably-caught contract: exploration with the fault armed stops at
/// a firing edge the oracle flags, and the emitted <= 50-event trace
/// reproduces the violation when run through the plain engine — exactly
/// what `fuzz_coherence --replay` does with it.
void expect_fault_caught(FaultKind kind) {
  const ModelConfig config = fault_config(kind);
  ASSERT_EQ(validate(config), "");
  ASSERT_EQ(fault_feasible(config), "");
  const ExploreResult result = explore(config);
  ASSERT_TRUE(result.counterexample.has_value())
      << "fault never fired (exhausted=" << result.exhausted << ")";
  const Counterexample& ce = *result.counterexample;
  EXPECT_EQ(ce.kind, FailureKind::kInvariant) << ce.detail;
  EXPECT_EQ(ce.faults_injected, 1u);
  EXPECT_TRUE(ce.report.failed());
  EXPECT_LE(ce.trace.total_events(), 50u);
  EXPECT_EQ(ce.trace.total_events(), 2 * ce.path.size());

  const CheckedRun replay =
      run_checked(build_system(config), EngineConfig{}, ce.trace);
  EXPECT_TRUE(replay.report.failed())
      << "counterexample trace does not reproduce";
}

TEST(ModelCheck, CatchesForgetSharer) {
  expect_fault_caught(FaultKind::kForgetSharer);
}

TEST(ModelCheck, CatchesSkipInvalidation) {
  expect_fault_caught(FaultKind::kSkipInvalidation);
}

TEST(ModelCheck, CatchesDropVictimWriteback) {
  expect_fault_caught(FaultKind::kDropVictimWriteback);
}

TEST(ModelCheck, CatchesForgetChipSharer) {
  expect_fault_caught(FaultKind::kForgetChipSharer);
}

TEST(ModelCheck, FaultFeasibilityRules) {
  // kForgetSharer's only site is the flat directory path.
  ModelConfig config = fault_config(FaultKind::kForgetSharer);
  config.procs = 4;
  config.chips = 2;
  EXPECT_NE(fault_feasible(config), "");
  // kForgetChipSharer needs the two-level machine.
  config = fault_config(FaultKind::kForgetChipSharer);
  config.procs = 2;
  config.chips = 1;
  EXPECT_NE(fault_feasible(config), "");
  // kDropVictimWriteback needs a victimizing sparse store.
  config = fault_config(FaultKind::kDropVictimWriteback);
  config.sparse = false;
  EXPECT_NE(fault_feasible(config), "");
}

TEST(ModelCheck, PathTraceReplaysTheExactInterleaving) {
  // Interleaved writers on one block: every access must land in the order
  // the path dictates, which the replayed stats confirm (each write after
  // the first is a write-miss-dirty => ownership transfer).
  const ModelConfig config = dense_config("full");
  const std::vector<ModelAction> path = {
      {0, 0, true}, {1, 0, true}, {0, 0, true}, {1, 0, true}};
  const ProgramTrace trace = path_trace(config, path);
  EXPECT_EQ(trace.total_events(), 2 * path.size());
  const CheckedRun run =
      run_checked(build_system(config), EngineConfig{}, trace);
  EXPECT_FALSE(run.report.failed());
  EXPECT_EQ(run.result.protocol.accesses, path.size());
  EXPECT_EQ(run.result.protocol.ownership_transfers, path.size() - 1);
}

}  // namespace
}  // namespace dircc::check::model
