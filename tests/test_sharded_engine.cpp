// Sharded engine determinism contract (docs/PARALLELISM.md): the SPSC
// hand-off ring, the home-region shard cut, byte-identical RunResults at
// every engine-thread count across schemes x stores x backends x special
// configurations, and the sweep runner's oversubscription cap.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "check/invariant_checker.hpp"
#include "common/json.hpp"
#include "harness/sweep.hpp"
#include "network/mesh.hpp"
#include "obs/metrics.hpp"
#include "sci/sci_system.hpp"
#include "sim/run_metrics.hpp"
#include "sim/shard_plan.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/spsc_queue.hpp"
#include "trace/datacenter.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig machine(int procs, SchemeConfig scheme) {
  SystemConfig config;
  config.num_procs = procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.block_size = 16;
  config.scheme = std::move(scheme);
  config.seed = 1990;
  return config;
}

/// Every registered RunResult counter rendered as one JSON object — two
/// runs are "the same" exactly when their fingerprints are byte-equal.
std::string fingerprint(const RunResult& result) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  obs::MetricsRegistry registry;
  register_metrics(registry, result);
  registry.emit_fields(json);
  json.end_object();
  return out.str();
}

/// Runs `trace` serially and under the sharded engine at each requested
/// thread count, asserting byte-identical fingerprints throughout.
void expect_identical_at_all_thread_counts(
    const SystemConfig& system_config, const ProgramTrace& trace,
    EngineConfig engine_config = {},
    std::vector<int> thread_counts = {2, 4, 8}) {
  CoherenceSystem serial_system(system_config);
  engine_config.engine_threads = 1;
  Engine serial(serial_system, trace, engine_config);
  const std::string expected = fingerprint(serial.run());
  for (const int threads : thread_counts) {
    CoherenceSystem system(system_config);
    engine_config.engine_threads = threads;
    ShardedEngine sharded(system, trace, engine_config);
    EXPECT_EQ(expected, fingerprint(sharded.run()))
        << "engine_threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// SpscQueue: FIFO, bounded capacity, the close/drain protocol
// ---------------------------------------------------------------------------

TEST(SpscQueue, FifoThroughWraparound) {
  SpscQueue<int> queue(4);
  int out = 0;
  // Several laps around the 4-slot ring, popping in push order every lap.
  for (int lap = 0; lap < 5; ++lap) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(queue.try_push(lap * 10 + i));
    }
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
      EXPECT_EQ(out, lap * 10 + i);
    }
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueue, CapacityIsTheRequestedBoundNotTheRingSize) {
  // The ring backing store rounds up to a power of two for index masking,
  // but the documented occupancy bound is the *requested* capacity: a
  // 5-slot queue must reject the 6th push, not the 9th.
  SpscQueue<int> queue(5);
  EXPECT_EQ(queue.capacity(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_push(i));
  }
  EXPECT_FALSE(queue.try_push(99)) << "a full queue must reject the push";
  int out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.try_push(99)) << "one pop frees one slot";
  EXPECT_FALSE(queue.try_push(100)) << "and exactly one";
  // The bound holds through wraparound too, where the old occupancy check
  // (ring-size based) used to admit capacity-rounded-up items.
  for (int lap = 0; lap < 3; ++lap) {
    ASSERT_TRUE(queue.try_pop(out));
    ASSERT_TRUE(queue.try_push(lap));
    EXPECT_FALSE(queue.try_push(0)) << "lap " << lap;
    EXPECT_EQ(queue.size(), 5u);
  }
}

TEST(SpscQueue, CloseLosesNothingAlreadyQueued) {
  SpscQueue<int> queue(8);
  ASSERT_TRUE(queue.try_push(1));
  ASSERT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.exhausted()) << "items remain after close";
  int out = 0;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.exhausted()) << "closed and drained = end of stream";
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueue, NoLossOrReorderUnderConcurrentProducerConsumer) {
  constexpr int kItems = 200000;
  SpscQueue<int> queue(64);
  std::thread producer([&queue] {
    for (int i = 0; i < kItems; ++i) {
      while (!queue.try_push(i)) {
        std::this_thread::yield();
      }
    }
    queue.close();
  });
  int expected = 0;
  int out = 0;
  for (;;) {
    if (queue.try_pop(out)) {
      ASSERT_EQ(out, expected) << "items must arrive in push order";
      ++expected;
      continue;
    }
    if (queue.exhausted()) {
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kItems) << "every pushed item must be popped";
}

// ---------------------------------------------------------------------------
// Mesh regions and the shard cut
// ---------------------------------------------------------------------------

TEST(MeshRegions, RangesPartitionTheMeshAndInvertRegionOf) {
  for (const int nodes : {1, 4, 7, 8, 16, 32}) {
    const MeshTopology mesh(nodes);
    for (const int regions : {1, 2, 3, 5, 8}) {
      int covered = 0;
      for (int region = 0; region < regions; ++region) {
        const MeshTopology::RegionRange range =
            mesh.region_range(region, regions);
        EXPECT_EQ(range.first, covered) << "ranges must be contiguous";
        for (NodeId node = range.first; node < range.last; ++node) {
          EXPECT_EQ(mesh.region_of(node, regions), region)
              << nodes << " nodes, " << regions << " regions, node " << node;
        }
        covered = static_cast<int>(range.last);
      }
      EXPECT_EQ(covered, nodes) << "ranges must cover every node";
    }
  }
}

TEST(MeshRegions, BandSizesDifferByAtMostOne) {
  const MeshTopology mesh(32);
  for (const int regions : {3, 5, 6, 7}) {
    int min_size = 32;
    int max_size = 0;
    for (int region = 0; region < regions; ++region) {
      const auto range = mesh.region_range(region, regions);
      const int size = static_cast<int>(range.last - range.first);
      min_size = std::min(min_size, size);
      max_size = std::max(max_size, size);
    }
    EXPECT_LE(max_size - min_size, 1) << regions << " regions";
  }
}

TEST(ShardPlan, PartitionsProcessorsContiguouslyAndCompletely) {
  const ShardPlan plan(32, 1, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  int next_proc = 0;
  for (int shard = 0; shard < plan.num_shards(); ++shard) {
    const std::vector<ProcId>& procs = plan.procs_of(shard);
    ASSERT_FALSE(procs.empty());
    for (const ProcId proc : procs) {
      EXPECT_EQ(proc, next_proc) << "shard " << shard;
      EXPECT_EQ(plan.shard_of_proc(proc), shard);
      ++next_proc;
    }
    const MeshTopology::RegionRange nodes = plan.nodes_of(shard);
    for (NodeId node = nodes.first; node < nodes.last; ++node) {
      EXPECT_EQ(plan.shard_of_node(node), shard);
    }
  }
  EXPECT_EQ(next_proc, 32) << "every processor must be owned";
}

TEST(ShardPlan, ClampsToTheClusterCount) {
  const ShardPlan plan(8, 1, 64);
  EXPECT_EQ(plan.num_shards(), 8);
  const ShardPlan one(8, 1, 0);
  EXPECT_EQ(one.num_shards(), 1);
}

TEST(ShardPlan, WholeClustersStayTogether) {
  // 16 procs in 8 clusters of 2, cut into 3 shards: both procs of every
  // cluster land in their cluster's shard.
  const ShardPlan plan(16, 2, 3);
  for (ProcId proc = 0; proc < 16; ++proc) {
    const auto cluster = static_cast<NodeId>(proc / 2);
    EXPECT_EQ(plan.shard_of_proc(proc), plan.shard_of_node(cluster))
        << "proc " << proc;
  }
}

// ---------------------------------------------------------------------------
// ShardedEngine: byte-identical results at every thread count
// ---------------------------------------------------------------------------

struct GridCase {
  const char* label;
  SchemeConfig scheme;
  bool sparse;
  BackendKind backend;
};

class ShardedDeterminism : public ::testing::TestWithParam<GridCase> {};

TEST_P(ShardedDeterminism, MatchesSerialAcrossThreadCounts) {
  const GridCase& grid = GetParam();
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 11, 0.05);
  SystemConfig config = machine(8, grid.scheme);
  config.backend = grid.backend;
  if (grid.sparse) {
    config.store.sparse = true;
    config.store.sparse_entries = 64;
    config.store.sparse_assoc = 4;
    config.store.policy = ReplPolicy::kRandom;
  }
  expect_identical_at_all_thread_counts(config, trace);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesStoresBackends, ShardedDeterminism,
    ::testing::Values(
        GridCase{"full_dense_analytic", SchemeConfig::full(8), false,
                 BackendKind::kAnalytic},
        GridCase{"full_sparse_analytic", SchemeConfig::full(8), true,
                 BackendKind::kAnalytic},
        GridCase{"full_dense_queued", SchemeConfig::full(8), false,
                 BackendKind::kQueued},
        GridCase{"full_sparse_queued", SchemeConfig::full(8), true,
                 BackendKind::kQueued},
        GridCase{"cv_dense_analytic", SchemeConfig::coarse(8, 3, 2), false,
                 BackendKind::kAnalytic},
        GridCase{"cv_sparse_queued", SchemeConfig::coarse(8, 3, 2), true,
                 BackendKind::kQueued},
        GridCase{"nb_dense_analytic", SchemeConfig::no_broadcast(8, 3),
                 false, BackendKind::kAnalytic},
        GridCase{"nb_sparse_queued", SchemeConfig::no_broadcast(8, 3), true,
                 BackendKind::kQueued},
        GridCase{"b_dense_queued", SchemeConfig::broadcast(8, 3), false,
                 BackendKind::kQueued}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return info.param.label;
    });

TEST(ShardedEngine, LockHeavyAppAcrossSchedulePerturbations) {
  // MP3D is barrier-heavy; LocusRoute adds lock contention — the sync
  // paths (queued locks, barrier episodes) must replay identically.
  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, 8, 16, 23, 0.05);
  expect_identical_at_all_thread_counts(machine(8, SchemeConfig::full(8)),
                                        trace);
}

TEST(ShardedEngine, ReleaseConsistencyAndRegionGrantLocks) {
  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, 8, 16, 7, 0.05);
  EngineConfig engine;
  engine.release_consistency = true;
  engine.write_buffer_depth = 2;
  engine.region_grant_locks = true;
  engine.lock_region_size = 2;
  expect_identical_at_all_thread_counts(machine(8, SchemeConfig::full(8)),
                                        trace, engine);
}

TEST(ShardedEngine, TwoLevelCachesAndMultiProcClusters) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 3, 0.05);
  SystemConfig config = machine(8, SchemeConfig::full(4));
  config.procs_per_cluster = 2;  // 4 clusters of 2 — shards own clusters
  config.l1_lines_per_proc = 32;
  config.l1_assoc = 2;
  expect_identical_at_all_thread_counts(config, trace);
}

TEST(ShardedEngine, SmallQueueCapacityOnlyChangesScheduling) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 19, 0.05);
  EngineConfig engine;
  engine.shard_queue_capacity = 2;  // pathologically tight lookahead window
  expect_identical_at_all_thread_counts(machine(8, SchemeConfig::full(8)),
                                        trace, engine, {2, 4});
}

TEST(ShardedEngine, SciSystemRunsShardedToo) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 13, 0.05);
  SciConfig config;
  config.num_procs = 8;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;

  SciSystem serial_system(config);
  Engine serial(serial_system, trace);
  const std::string expected = fingerprint(serial.run());
  for (const int threads : {2, 4}) {
    SciSystem system(config);
    EngineConfig engine_config;
    engine_config.engine_threads = threads;
    ShardedEngine sharded(system, trace, engine_config);
    EXPECT_EQ(expected, fingerprint(sharded.run()))
        << "engine_threads=" << threads;
  }
}

TEST(ShardedEngine, StreamingSourceMatchesSerial) {
  const SystemConfig config = machine(8, SchemeConfig::full(8));
  const auto run_with = [&config](int threads) {
    const auto source =
        make_datacenter_source(DatacenterKind::kKv, 8, 16, 48, 7, 0.5);
    CoherenceSystem system(config);
    EngineConfig engine_config;
    engine_config.engine_threads = threads;
    ShardedEngine engine(system, *source, engine_config);
    return fingerprint(engine.run());
  };
  const std::string expected = run_with(1);
  EXPECT_EQ(expected, run_with(2));
  EXPECT_EQ(expected, run_with(4));
}

TEST(ShardedEngine, ThreadCountBeyondClustersClamps) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 5, 0.05);
  CoherenceSystem serial_system(machine(8, SchemeConfig::full(8)));
  Engine serial(serial_system, trace);
  const std::string expected = fingerprint(serial.run());

  CoherenceSystem system(machine(8, SchemeConfig::full(8)));
  EngineConfig engine_config;
  engine_config.engine_threads = 64;  // far beyond the 8 clusters
  ShardedEngine sharded(system, trace, engine_config);
  EXPECT_EQ(expected, fingerprint(sharded.run()));
  EXPECT_LE(sharded.shards_used(), 8);
  EXPECT_GE(sharded.shards_used(), 1);
}

TEST(ShardedEngine, TelemetryAccountsEveryForwardedEvent) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 5, 0.05);
  CoherenceSystem system(machine(8, SchemeConfig::full(8)));
  EngineConfig engine_config;
  engine_config.engine_threads = 4;
  ShardedEngine sharded(system, trace, engine_config);
  (void)sharded.run();
  EXPECT_EQ(sharded.telemetry().events_forwarded, trace.total_events());
  EXPECT_EQ(sharded.telemetry().shards, sharded.shards_used());
  EXPECT_GE(sharded.telemetry().fetch_threads, 1);
}

TEST(ShardedEngine, SerialDelegationSpawnsNoShards) {
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 4, 16, 5, 0.05);
  CoherenceSystem system(machine(4, SchemeConfig::full(4)));
  ShardedEngine engine(system, trace);
  (void)engine.run();
  EXPECT_EQ(engine.shards_used(), 0);
  EXPECT_EQ(engine.telemetry().fetch_threads, 0);
}

TEST(ShardedEngine, CheckerHaltPropagatesIdentically) {
  if (!check::compiled()) {
    GTEST_SKIP() << "DIRCC_CHECK=0";
  }
  const ProgramTrace trace = generate_app(AppKind::kMp3d, 8, 16, 5, 0.05);
  SystemConfig config = machine(8, SchemeConfig::full(8));
  config.validate = false;  // the oracle, not the protocol assert, detects
  config.fault.kind = check::FaultKind::kForgetSharer;
  config.fault.trigger = 50;

  const auto run_with = [&](int threads, bool& halted,
                            check::CheckReport& report) {
    CoherenceSystem system(config);
    check::InvariantChecker checker(system);
    EngineConfig engine_config;
    engine_config.engine_threads = threads;
    ShardedEngine engine(system, trace, engine_config, nullptr, &checker);
    const RunResult result = engine.run();
    halted = engine.halted_by_checker();
    report = checker.finish(halted);
    return fingerprint(result);
  };

  bool serial_halted = false;
  check::CheckReport serial_report;
  const std::string expected = run_with(1, serial_halted, serial_report);
  ASSERT_TRUE(serial_halted) << "the seeded fault must halt the run";
  for (const int threads : {2, 4}) {
    bool halted = false;
    check::CheckReport report;
    EXPECT_EQ(expected, run_with(threads, halted, report))
        << "engine_threads=" << threads;
    EXPECT_EQ(halted, serial_halted);
    EXPECT_EQ(report.accesses_observed, serial_report.accesses_observed);
    EXPECT_EQ(report.violations.size(), serial_report.violations.size());
  }
}

// ---------------------------------------------------------------------------
// SweepRunner: the two parallelism levels compose without oversubscription
// ---------------------------------------------------------------------------

std::vector<harness::SweepCell> small_grid(int engine_threads) {
  std::vector<harness::SweepCell> cells;
  for (int i = 0; i < 4; ++i) {
    harness::SweepCell cell;
    cell.key = "cell" + std::to_string(i);
    cell.trace = harness::app_trace(AppKind::kMp3d, 8, 16, 5, 0.05);
    cell.system = machine(8, SchemeConfig::full(8));
    cell.engine.engine_threads = engine_threads;
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(SweepRunner, CapsThePoolWhenCellsRunSharded) {
  // Request engine threads at 2x the host's cores: cells x engine threads
  // would oversubscribe, so the runner must shrink its pool to 1.
  const int host = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  harness::SweepRunner runner(4);
  const auto results = runner.run(small_grid(2 * host));
  EXPECT_EQ(runner.telemetry().threads_used, 1);
  ASSERT_EQ(results.size(), 4u);
}

TEST(SweepRunner, ShardedCellsMatchSerialCells) {
  harness::SweepRunner serial_runner(2);
  const auto serial = serial_runner.run(small_grid(1));
  harness::SweepRunner sharded_runner(2);
  const auto sharded = sharded_runner.run(small_grid(3));
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(fingerprint(serial[i].result), fingerprint(sharded[i].result))
        << serial[i].key;
  }
}

TEST(SweepRunner, SerialCellsKeepTheFullPool) {
  harness::SweepRunner runner(2);
  const auto results = runner.run(small_grid(1));
  EXPECT_EQ(runner.telemetry().threads_used,
            std::min(2, static_cast<int>(results.size())));
}

}  // namespace
}  // namespace dircc
