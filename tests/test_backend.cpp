// Latency backends over the transaction IR: the analytic backend charges
// the paper's closed-form costs, the queued backend walks the hop DAG
// through per-link and per-home FIFOs and can only ever be slower.
#include <gtest/gtest.h>

#include "check/fuzz.hpp"
#include "check/invariant_checker.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc {
namespace {

SystemConfig backend_config(BackendKind backend) {
  SystemConfig config;
  config.num_procs = 32;
  config.cache_lines_per_proc = 64;
  config.cache_assoc = 4;
  config.scheme = SchemeConfig::full(32);
  config.backend = backend;
  return config;
}

RunResult run_app(BackendKind backend) {
  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, 32, 16, 7, 0.25);
  SystemConfig config = backend_config(backend);
  config.cache_lines_per_proc = 512;
  CoherenceSystem sys(config);
  Engine engine(sys, trace);
  return engine.run();
}

TEST(Backend, Names) {
  CoherenceSystem analytic(backend_config(BackendKind::kAnalytic));
  CoherenceSystem queued(backend_config(BackendKind::kQueued));
  EXPECT_STREQ(analytic.backend().name(), "analytic");
  EXPECT_STREQ(queued.backend().name(), "queued");
}

TEST(Backend, AnalyticIsTheDefaultAndChargesNoQueueWaits) {
  SystemConfig config;
  EXPECT_EQ(config.backend, BackendKind::kAnalytic);
  const RunResult result = run_app(BackendKind::kAnalytic);
  EXPECT_EQ(result.protocol.link_wait_cycles, 0u);
  EXPECT_EQ(result.protocol.home_wait_cycles, 0u);
}

TEST(Backend, QueuedNeverFasterEndToEnd) {
  const RunResult analytic = run_app(BackendKind::kAnalytic);
  const RunResult queued = run_app(BackendKind::kQueued);
  EXPECT_GE(queued.exec_cycles, analytic.exec_cycles);
  EXPECT_GT(queued.protocol.link_wait_cycles +
                queued.protocol.home_wait_cycles,
            0u);
}

TEST(Backend, SameAccessSequenceMovesTheSameMessages) {
  // The backend only prices a transaction; its hop DAG — and with it
  // every message counter — is identical under both. (End-to-end runs can
  // differ in counts because latency feeds back into lock and barrier
  // interleaving; a fixed access sequence removes that.)
  CoherenceSystem analytic(backend_config(BackendKind::kAnalytic));
  CoherenceSystem queued(backend_config(BackendKind::kQueued));
  Cycle t = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto proc = static_cast<ProcId>((i * 7) % 32);
    const BlockAddr block = static_cast<BlockAddr>((i * 13) % 96);
    const bool is_write = i % 5 == 0;
    analytic.access(proc, block, is_write, t);
    queued.access(proc, block, is_write, t);
    t += 3;
  }
  EXPECT_EQ(queued.stats().messages.total(),
            analytic.stats().messages.total());
  EXPECT_EQ(queued.stats().messages.inv_plus_ack(),
            analytic.stats().messages.inv_plus_ack());
  EXPECT_EQ(queued.stats().messages.get(MsgClass::kWriteback),
            analytic.stats().messages.get(MsgClass::kWriteback));
}

TEST(Backend, QueuedIsDeterministic) {
  const RunResult first = run_app(BackendKind::kQueued);
  const RunResult second = run_app(BackendKind::kQueued);
  EXPECT_EQ(first.exec_cycles, second.exec_cycles);
  EXPECT_EQ(first.protocol.link_wait_cycles,
            second.protocol.link_wait_cycles);
  EXPECT_EQ(first.protocol.home_wait_cycles,
            second.protocol.home_wait_cycles);
}

// Latency of a write invalidating `sharers` caches, issued long after the
// warm-up so only the write's own fan-out is measured.
Cycle write_latency(int sharers, BackendKind backend) {
  CoherenceSystem sys(backend_config(backend));
  Cycle t = 0;
  for (int p = 0; p < sharers; ++p) {
    sys.access(static_cast<ProcId>(2 + p), 0, false, t);
    t += 100;
  }
  return sys.access(1, 0, true, 1'000'000);
}

TEST(Backend, QueuedLatencyMonotoneInInvalidationFanout) {
  Cycle previous = 0;
  for (const int sharers : {0, 1, 2, 4, 8, 16, 30}) {
    const Cycle queued = write_latency(sharers, BackendKind::kQueued);
    EXPECT_GE(queued, previous) << "fan-out " << sharers;
    EXPECT_GE(queued, write_latency(sharers, BackendKind::kAnalytic))
        << "fan-out " << sharers;
    previous = queued;
  }
}

// Latency of a read whose sparse miss reclaims a victim entry with
// `sharers` cached copies (blocks 0/32/64 collide in home 0's one set).
Cycle reclaim_latency(int sharers, BackendKind backend) {
  SystemConfig config = backend_config(backend);
  config.store.sparse = true;
  config.store.sparse_entries = 2;
  config.store.sparse_assoc = 2;
  config.store.policy = ReplPolicy::kLru;
  CoherenceSystem sys(config);
  Cycle t = 0;
  for (int p = 0; p < sharers; ++p) {
    sys.access(static_cast<ProcId>(2 + p), 0, false, t);
    t += 100;
  }
  sys.access(1, 32, false, 500'000);
  return sys.access(1, 64, false, 1'000'000);
}

TEST(Backend, QueuedLatencyMonotoneInSparsePressure) {
  Cycle previous = 0;
  for (const int sharers : {0, 1, 2, 4, 8, 16, 30}) {
    const Cycle queued = reclaim_latency(sharers, BackendKind::kQueued);
    EXPECT_GE(queued, previous) << "victim sharers " << sharers;
    EXPECT_GE(queued, reclaim_latency(sharers, BackendKind::kAnalytic))
        << "victim sharers " << sharers;
    previous = queued;
  }
}

TEST(Backend, CheckerStaysCleanUnderQueued) {
  check::FuzzTraceConfig tc;
  tc.procs = 16;
  tc.block_size = 16;
  tc.rounds = 4;
  tc.units_per_round = 40;
  tc.hot_blocks = 4;
  tc.pool_blocks = 192;
  tc.num_locks = 4;
  tc.seed = 11;
  const ProgramTrace trace = check::generate_fuzz_trace(tc);
  SystemConfig config = backend_config(BackendKind::kQueued);
  config.num_procs = 16;
  config.cache_lines_per_proc = 16;
  config.cache_assoc = 2;
  config.scheme = SchemeConfig::full(16);
  config.validate = false;
  const check::CheckedRun run =
      check::run_checked(config, EngineConfig{}, trace);
  EXPECT_FALSE(run.report.failed());
}

}  // namespace
}  // namespace dircc
