// Processor cache model: MSI line states, LRU replacement, eviction and
// invalidation behaviour.
#include <gtest/gtest.h>

#include <optional>

#include "cache/cache.hpp"

namespace dircc {
namespace {

TEST(Cache, MissThenHit) {
  Cache cache(8, 2);
  EXPECT_FALSE(cache.read_lookup(100));
  std::optional<EvictedLine> evicted;
  cache.fill(100, LineState::kShared, 1, evicted);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_TRUE(cache.read_lookup(100));
  EXPECT_EQ(cache.stats().read_misses, 1u);
  EXPECT_EQ(cache.stats().read_hits, 1u);
}

TEST(Cache, WriteLookupDistinguishesStates) {
  Cache cache(8, 2);
  EXPECT_EQ(cache.write_lookup(1), Cache::WriteLookup::kMiss);
  std::optional<EvictedLine> evicted;
  cache.fill(1, LineState::kShared, 0, evicted);
  EXPECT_EQ(cache.write_lookup(1), Cache::WriteLookup::kHitShared);
  cache.upgrade(1, 1);
  EXPECT_EQ(cache.write_lookup(1), Cache::WriteLookup::kHitModified);
  EXPECT_EQ(cache.stats().write_misses, 1u);
  EXPECT_EQ(cache.stats().write_upgrades, 1u);
  EXPECT_EQ(cache.stats().write_hits, 1u);
}

TEST(Cache, EvictsLruLine) {
  Cache cache(2, 2);  // one set, two ways
  std::optional<EvictedLine> evicted;
  cache.fill(10, LineState::kShared, 0, evicted);
  cache.fill(11, LineState::kShared, 0, evicted);
  cache.read_lookup(10);  // 11 becomes LRU
  cache.fill(12, LineState::kShared, 0, evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block, 11u);
  EXPECT_FALSE(evicted->dirty);
  EXPECT_EQ(cache.probe(10), LineState::kShared);
  EXPECT_EQ(cache.probe(11), LineState::kInvalid);
}

TEST(Cache, DirtyEvictionCarriesVersion) {
  Cache cache(2, 2);
  std::optional<EvictedLine> evicted;
  cache.fill(10, LineState::kModified, 7, evicted);
  cache.fill(11, LineState::kShared, 0, evicted);
  cache.fill(12, LineState::kShared, 0, evicted);  // displaces 10 (LRU)
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block, 10u);
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(evicted->version, 7u);
  EXPECT_EQ(cache.stats().evictions_dirty, 1u);
}

TEST(Cache, InvalidateReportsStateAndFreesLine) {
  Cache cache(8, 2);
  std::optional<EvictedLine> evicted;
  cache.fill(5, LineState::kModified, 3, evicted);
  const auto result = cache.invalidate(5);
  EXPECT_TRUE(result.had_copy);
  EXPECT_TRUE(result.was_dirty);
  EXPECT_EQ(result.version, 3u);
  EXPECT_EQ(cache.probe(5), LineState::kInvalid);
  EXPECT_EQ(cache.lines_valid(), 0u);
  // Extraneous invalidation (no copy).
  const auto again = cache.invalidate(5);
  EXPECT_FALSE(again.had_copy);
  EXPECT_EQ(cache.stats().invalidations_received, 1u);
  EXPECT_EQ(cache.stats().invalidations_empty, 1u);
}

TEST(Cache, DowngradeKeepsLineShared) {
  Cache cache(8, 2);
  std::optional<EvictedLine> evicted;
  cache.fill(5, LineState::kModified, 9, evicted);
  EXPECT_EQ(cache.downgrade(5), 9u);
  EXPECT_EQ(cache.probe(5), LineState::kShared);
}

TEST(Cache, WriteTouchUpdatesVersion) {
  Cache cache(8, 2);
  std::optional<EvictedLine> evicted;
  cache.fill(5, LineState::kModified, 1, evicted);
  cache.write_touch(5, 2);
  EXPECT_EQ(cache.version_of(5), 2u);
  EXPECT_EQ(cache.probe(5), LineState::kModified);
}

TEST(Cache, SetsIsolateConflicts) {
  Cache cache(4, 1);  // 4 direct-mapped sets
  std::optional<EvictedLine> evicted;
  cache.fill(0, LineState::kShared, 0, evicted);
  cache.fill(1, LineState::kShared, 0, evicted);
  EXPECT_FALSE(evicted.has_value());  // different sets
  cache.fill(4, LineState::kShared, 0, evicted);  // conflicts with 0
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->block, 0u);
}

TEST(Cache, UpgradePreservesOccupancy) {
  Cache cache(4, 2);
  std::optional<EvictedLine> evicted;
  cache.fill(3, LineState::kShared, 0, evicted);
  const auto before = cache.lines_valid();
  cache.upgrade(3, 1);
  EXPECT_EQ(cache.lines_valid(), before);
  EXPECT_EQ(cache.probe(3), LineState::kModified);
}

}  // namespace
}  // namespace dircc
