// Directory stores: full (entry per block) and sparse (set-associative cache
// without backing store), including victim selection policies.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "directory/store.hpp"

namespace dircc {
namespace {

TEST(FullStore, AllocatesOnDemandAndNeverEvicts) {
  FullDirectoryStore store;
  std::optional<VictimEntry> victim;
  for (BlockAddr b = 0; b < 1000; ++b) {
    DirEntry* entry = store.find_or_alloc(b, victim);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(victim.has_value());
    entry->state = DirState::kShared;
  }
  EXPECT_EQ(store.live_entries(), 1000u);
  EXPECT_EQ(store.capacity_entries(), 0u);
  for (BlockAddr b = 0; b < 1000; ++b) {
    ASSERT_NE(store.find(b), nullptr);
    EXPECT_EQ(store.find(b)->state, DirState::kShared);
  }
}

TEST(FullStore, FindMissesUnallocated) {
  FullDirectoryStore store;
  EXPECT_EQ(store.find(42), nullptr);
}

TEST(FullStore, ReleaseFreesEntry) {
  FullDirectoryStore store;
  std::optional<VictimEntry> victim;
  store.find_or_alloc(7, victim);
  EXPECT_NE(store.find(7), nullptr);
  store.release(7);
  EXPECT_EQ(store.find(7), nullptr);
  EXPECT_EQ(store.live_entries(), 0u);
}

TEST(FullStore, StatsCountHitsAndAllocations) {
  FullDirectoryStore store;
  std::optional<VictimEntry> victim;
  store.find_or_alloc(1, victim);
  store.find_or_alloc(1, victim);
  store.find(1);
  store.find(2);
  EXPECT_EQ(store.stats().allocations, 1u);
  EXPECT_EQ(store.stats().hits, 2u);
  EXPECT_EQ(store.stats().lookups, 4u);
}

TEST(SparseStore, FillsFreeWaysBeforeEvicting) {
  SparseDirectoryStore store(8, 4, ReplPolicy::kLru, 1);  // 2 sets x 4 ways
  std::optional<VictimEntry> victim;
  // Blocks 0,2,4,6 map to set 0; fill all four ways.
  for (BlockAddr b : {0, 2, 4, 6}) {
    store.find_or_alloc(b, victim);
    EXPECT_FALSE(victim.has_value()) << b;
  }
  EXPECT_EQ(store.live_entries(), 4u);
  // A fifth block in set 0 must displace something.
  store.find_or_alloc(8, victim);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(store.stats().replacements, 1u);
  // Set 1 is still empty: no eviction there.
  store.find_or_alloc(1, victim);
  EXPECT_FALSE(victim.has_value());
}

TEST(SparseStore, LruEvictsLeastRecentlyUsed) {
  SparseDirectoryStore store(4, 4, ReplPolicy::kLru, 1);  // 1 set x 4 ways
  std::optional<VictimEntry> victim;
  for (BlockAddr b : {10, 11, 12, 13}) {
    store.find_or_alloc(b, victim);
  }
  // Touch everything except 11.
  store.find(10);
  store.find(12);
  store.find(13);
  store.find_or_alloc(14, victim);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->block, 11u);
}

TEST(SparseStore, LraEvictsOldestAllocationEvenIfHot) {
  SparseDirectoryStore store(4, 4, ReplPolicy::kLra, 1);
  std::optional<VictimEntry> victim;
  for (BlockAddr b : {10, 11, 12, 13}) {
    store.find_or_alloc(b, victim);
  }
  // Keep 10 (the oldest allocation) hot — LRA ignores that.
  store.find(10);
  store.find(10);
  store.find_or_alloc(14, victim);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->block, 10u);
}

TEST(SparseStore, RandomPolicyIsDeterministicPerSeed) {
  std::optional<VictimEntry> victim_a;
  std::optional<VictimEntry> victim_b;
  for (int trial = 0; trial < 3; ++trial) {
    SparseDirectoryStore a(4, 4, ReplPolicy::kRandom, 99);
    SparseDirectoryStore b(4, 4, ReplPolicy::kRandom, 99);
    for (BlockAddr blk : {10, 11, 12, 13, 14}) {
      a.find_or_alloc(blk, victim_a);
      b.find_or_alloc(blk, victim_b);
    }
    ASSERT_TRUE(victim_a.has_value());
    ASSERT_TRUE(victim_b.has_value());
    EXPECT_EQ(victim_a->block, victim_b->block);
  }
}

TEST(SparseStore, VictimCarriesItsDirectoryState) {
  SparseDirectoryStore store(4, 4, ReplPolicy::kLru, 1);
  std::optional<VictimEntry> victim;
  DirEntry* entry = store.find_or_alloc(10, victim);
  entry->state = DirState::kDirty;
  entry->owner = 5;
  for (BlockAddr b : {11, 12, 13}) {
    store.find_or_alloc(b, victim);
  }
  store.find_or_alloc(14, victim);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->block, 10u);
  EXPECT_EQ(victim->entry.state, DirState::kDirty);
  EXPECT_EQ(victim->entry.owner, 5);
  // The recycled slot must be clean.
  EXPECT_EQ(store.find(14)->state, DirState::kUncached);
  // The displaced block is gone.
  EXPECT_EQ(store.find(10), nullptr);
}

TEST(SparseStore, ReleaseMakesRoom) {
  SparseDirectoryStore store(4, 4, ReplPolicy::kLru, 1);
  std::optional<VictimEntry> victim;
  for (BlockAddr b : {10, 11, 12, 13}) {
    store.find_or_alloc(b, victim);
  }
  store.release(12);
  EXPECT_EQ(store.live_entries(), 3u);
  store.find_or_alloc(14, victim);
  EXPECT_FALSE(victim.has_value());  // reused the freed way
  EXPECT_EQ(store.live_entries(), 4u);
}

TEST(FullStore, ReleaseCountsLookupsLikeAnyProbe) {
  FullDirectoryStore store;
  std::optional<VictimEntry> victim;
  store.find_or_alloc(7, victim);  // lookup 1, allocation
  store.release(7);                // lookup 2, hit
  store.release(7);                // lookup 3, miss (already gone)
  EXPECT_EQ(store.stats().lookups, 3u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(SparseStore, ReleaseCountsLookupsLikeAnyProbe) {
  SparseDirectoryStore store(4, 4, ReplPolicy::kLru, 1);
  std::optional<VictimEntry> victim;
  store.find_or_alloc(10, victim);  // lookup 1, allocation
  store.release(10);                // lookup 2, hit
  store.release(10);                // lookup 3, miss (already gone)
  EXPECT_EQ(store.stats().lookups, 3u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(SparseStore, DirectMappedConflictsImmediately) {
  SparseDirectoryStore store(4, 1, ReplPolicy::kLru, 1);  // 4 sets x 1 way
  std::optional<VictimEntry> victim;
  store.find_or_alloc(0, victim);
  store.find_or_alloc(4, victim);  // same set as 0
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->block, 0u);
}

TEST(SparseStore, CapacityReportsConfiguredEntries) {
  SparseDirectoryStore store(64, 4, ReplPolicy::kRandom, 1);
  EXPECT_EQ(store.capacity_entries(), 64u);
  EXPECT_EQ(store.associativity(), 4);
}

TEST(SparseStore, HigherAssociativityAvoidsConflicts) {
  // Same capacity, different associativity; a cyclic conflict pattern
  // thrashes the direct-mapped store but fits in the 4-way one.
  SparseDirectoryStore direct(4, 1, ReplPolicy::kLru, 1);
  SparseDirectoryStore assoc4(4, 4, ReplPolicy::kLru, 1);
  std::optional<VictimEntry> victim;
  for (int round = 0; round < 10; ++round) {
    for (BlockAddr b : {0, 4, 8}) {  // all collide in the direct store
      direct.find_or_alloc(b, victim);
      assoc4.find_or_alloc(b, victim);
    }
  }
  EXPECT_GT(direct.stats().replacements, 20u);
  EXPECT_EQ(assoc4.stats().replacements, 0u);
}

TEST(SparseStore, IndexDivisorSpreadsInterleavedBlocks) {
  // Blocks homed at one cluster of a 32-cluster machine are every 32nd
  // block. Without the divisor they collide into gcd-limited sets; with
  // divisor 32 they use all sets.
  constexpr int kClusters = 32;
  SparseDirectoryStore naive(64, 4, ReplPolicy::kLru, 1, 1);
  SparseDirectoryStore local(64, 4, ReplPolicy::kLru, 1, kClusters);
  std::optional<VictimEntry> victim;
  for (BlockAddr i = 0; i < 48; ++i) {
    naive.find_or_alloc(i * kClusters, victim);   // home-0 blocks
    local.find_or_alloc(i * kClusters, victim);
  }
  // 48 blocks into 64 entries: the local-index store fits them all.
  EXPECT_EQ(local.stats().replacements, 0u);
  EXPECT_GT(naive.stats().replacements, 0u);
}

TEST(ReplPolicyName, Covers) {
  EXPECT_STREQ(repl_policy_name(ReplPolicy::kLru), "LRU");
  EXPECT_STREQ(repl_policy_name(ReplPolicy::kRandom), "Rand");
  EXPECT_STREQ(repl_policy_name(ReplPolicy::kLra), "LRA");
}

TEST(MakeStore, BuildsConfiguredKind) {
  StoreConfig full_config;
  auto full = make_store(full_config);
  EXPECT_EQ(full->capacity_entries(), 0u);

  StoreConfig sparse_config;
  sparse_config.sparse = true;
  sparse_config.sparse_entries = 128;
  sparse_config.sparse_assoc = 4;
  auto sparse = make_store(sparse_config);
  EXPECT_EQ(sparse->capacity_entries(), 128u);
}

}  // namespace
}  // namespace dircc
