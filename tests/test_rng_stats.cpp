// RNG determinism/uniformity and statistics primitives.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dircc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (int count : counts) {
    // Expected 10000 per bucket; allow 5% deviation.
    EXPECT_NEAR(count, kSamples / kBuckets, kSamples / kBuckets / 20);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(4, 6);
    EXPECT_GE(v, 4u);
    EXPECT_LE(v, 6u);
    saw_lo = saw_lo || v == 4;
    saw_hi = saw_hi || v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.events(), 0u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count_at(3), 0u);
  EXPECT_EQ(h.max_value(), 0u);
}

TEST(Histogram, AccumulatesMeanAndTotal) {
  Histogram h;
  h.add(0);
  h.add(0);
  h.add(3);
  h.add(5, 2);
  EXPECT_EQ(h.events(), 5u);
  EXPECT_EQ(h.total(), 13u);
  EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 5.0);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(5), 2u);
  EXPECT_EQ(h.max_value(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction_at(0), 0.4);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.add(1);
  b.add(2);
  b.add(2);
  a.merge(b);
  EXPECT_EQ(a.events(), 3u);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.count_at(2), 2u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(4);
  h.clear();
  EXPECT_EQ(h.events(), 0u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(OnlineStats, TracksMeanMinMax) {
  OnlineStats s;
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, VarianceMatchesTwoPassFormula) {
  const double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats s;
  double sum = 0.0;
  for (const double x : samples) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 8.0;
  double m2 = 0.0;
  for (const double x : samples) {
    m2 += (x - mean) * (x - mean);
  }
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), m2 / 8.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // the classic textbook set
}

TEST(OnlineStats, VarianceIsZeroBelowTwoSamples) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, VarianceIsNumericallyStableAtLargeOffsets) {
  // Naive sum-of-squares cancels catastrophically here; Welford must not.
  OnlineStats s;
  const double offset = 1e9;
  for (const double x : {4.0, 7.0, 13.0, 16.0}) {
    s.add(offset + x);
  }
  EXPECT_NEAR(s.variance(), 22.5, 1e-6);
}

TEST(OnlineStats, MergeMatchesSequentialAdds) {
  // Split a sample stream across two accumulators (as the sweep's worker
  // threads do) and merge: every moment must match the single-stream run.
  const double samples[] = {1.5, -2.0, 8.25, 3.0, 3.0, -7.5, 0.0, 12.0, 4.5};
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  int i = 0;
  for (const double x : samples) {
    whole.add(x);
    (i++ < 4 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats filled;
  filled.add(3.0);
  filled.add(5.0);

  OnlineStats empty_dst;
  empty_dst.merge(filled);  // empty <- filled adopts everything
  EXPECT_EQ(empty_dst.count(), 2u);
  EXPECT_DOUBLE_EQ(empty_dst.mean(), 4.0);
  EXPECT_DOUBLE_EQ(empty_dst.min(), 3.0);

  OnlineStats empty_src;
  filled.merge(empty_src);  // filled <- empty is a no-op
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 4.0);
}

TEST(OnlineStats, MergeIsCountWeighted) {
  // Unequal partition sizes: the merged mean must weight by count, not
  // average the two means.
  OnlineStats a;
  a.add(10.0);
  OnlineStats b;
  for (int i = 0; i < 9; ++i) {
    b.add(0.0);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_NEAR(a.mean(), 1.0, 1e-12);
  EXPECT_NEAR(a.variance(), 9.0, 1e-12);
}

}  // namespace
}  // namespace dircc
