// Scale study: the paper's motivating claim — "a combination of the two
// techniques presented will allow machines to be scaled to hundreds of
// processors while keeping the directory memory overhead reasonable"
// (Section 8) — extended one level up (docs/HIERARCHY.md).
//
// Sweeps the machine from 32 to 1024 processors and compares three
// organizations at every size:
//
//   flat-full   the flat full-bit-vector directory (quadratic state);
//   two-level   the composable hierarchy: a sparse coarse-vector
//               inter-chip directory at the homes over a full-map
//               intra-chip directory per chip;
//   dls         the directoryless Dir0B baseline: zero directory storage,
//               coherence by broadcast (the traffic floor storage buys).
//
// Every size runs MP3D through the simulator under the selected backend
// (--backend analytic|queued) while the storage model prices each
// organization per level; --curve-json writes the machine-readable scaling
// curve the CI hierarchy-smoke job schema-checks. The 512- and
// 1024-processor points pack 2 and 4 processors per cluster so the
// machine stays within the 256-cluster mesh.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "model/storage_model.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

struct SizePoint {
  int procs = 0;
  int procs_per_cluster = 1;
  int clusters = 0;
  int chips = 0;
};

struct ScaleFlags {
  HarnessOptions harness;
  std::vector<int> procs;
  double scale = 0.25;
  int clusters_per_chip = 8;
  int sparse_factor = 4;  ///< sparse inter entries per total cache line
  std::string curve_json;
};

ScaleFlags parse_flags(int argc, const char* const* argv) {
  CliParser cli;
  cli.add_option("procs", "32,64,128,256,512,1024",
                 "comma-separated machine sizes in processors (sizes above "
                 "256 pack multiple processors per cluster)");
  cli.add_option("scale", "0.25", "MP3D problem scale per point (0..1]");
  cli.add_option("clusters-per-chip", "8",
                 "clusters per chip of the two-level organization (must "
                 "divide every machine's cluster count; --chips > 1 "
                 "overrides the chip count at every size instead)");
  cli.add_option("sparse-factor", "4",
                 "sparse inter-chip directory size as a multiple of the "
                 "machine's total cache lines");
  cli.add_option("curve-json", "",
                 "write the machine-readable scaling curve here "
                 "('-' = stdout)");
  add_harness_options(cli);
  // The study's headline two-level organization is the paper's sparse
  // coarse-vector at the inter-chip level (Dir_iCV_r over a sparse store);
  // --inter-scheme still overrides it.
  cli.set_default("inter-scheme", "cv");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    std::exit(0);
  }
  ScaleFlags flags;
  flags.harness = read_harness_options(cli);
  for (const std::string& token : split_list(cli.get("procs"))) {
    flags.procs.push_back(
        static_cast<int>(parse_int_token("procs", token)));
  }
  flags.scale = cli.get_double("scale");
  flags.clusters_per_chip =
      static_cast<int>(cli.get_int("clusters-per-chip"));
  flags.sparse_factor = static_cast<int>(cli.get_int("sparse-factor"));
  flags.curve_json = cli.get("curve-json");
  ensure(!flags.procs.empty(), "--procs must name at least one size");
  ensure(flags.scale > 0.0 && flags.scale <= 1.0,
         "--scale must be in (0, 1]");
  ensure(flags.clusters_per_chip >= 2,
         "--clusters-per-chip must be at least 2");
  return flags;
}

SizePoint size_point(const ScaleFlags& flags, int procs) {
  SizePoint point;
  point.procs = procs;
  // Stay within the 256-cluster mesh by packing processors per cluster.
  point.procs_per_cluster = procs <= 256 ? 1 : procs / 256;
  ensure(procs % point.procs_per_cluster == 0,
         "machine size must be a multiple of its cluster packing");
  point.clusters = procs / point.procs_per_cluster;
  point.chips = flags.harness.chips > 1 ? flags.harness.chips
                                        : point.clusters /
                                              flags.clusters_per_chip;
  ensure(point.chips >= 2 && point.clusters % point.chips == 0,
         "chips must divide the cluster count (adjust --clusters-per-chip "
         "or --procs)");
  return point;
}

SystemConfig base_machine(const SizePoint& point) {
  SystemConfig config;
  config.num_procs = point.procs;
  config.procs_per_cluster = point.procs_per_cluster;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.block_size = kBlockSize;
  config.seed = kSeed;
  return config;
}

/// Sparse inter-chip entries per home cluster, mirroring make_sparse().
std::uint64_t inter_sparse_entries(const ScaleFlags& flags,
                                   const SizePoint& point) {
  const std::uint64_t total_cache_lines =
      256ULL * static_cast<std::uint64_t>(point.procs);
  std::uint64_t per_home = total_cache_lines *
                           static_cast<std::uint64_t>(flags.sparse_factor) /
                           static_cast<std::uint64_t>(point.clusters);
  per_home = ceil_div(per_home, 4ULL) * 4ULL;
  return per_home;
}

/// The three simulated organizations, in cell order per size point.
constexpr const char* kOrgNames[] = {"flat-full", "two-level", "dls"};

SystemConfig org_machine(const ScaleFlags& flags, const SizePoint& point,
                         int org) {
  SystemConfig config = base_machine(point);
  switch (org) {
    case 0:  // flat full bit vector, dense store
      config.scheme = SchemeConfig::full(point.clusters);
      break;
    case 1: {  // two-level: sparse CV inter-chip over full-map intra-chip
      config.scheme = SchemeConfig::full(point.clusters);  // ignored
      config.hierarchy.chips = point.chips;
      config.hierarchy.inter =
          parse_level_scheme(flags.harness.inter_scheme, point.chips);
      config.hierarchy.intra = parse_level_scheme(
          flags.harness.intra_scheme, point.clusters / point.chips);
      config.hierarchy.inter_store.sparse = true;
      config.hierarchy.inter_store.sparse_entries =
          flags.harness.inter_sparse_entries > 0
              ? flags.harness.inter_sparse_entries
              : inter_sparse_entries(flags, point);
      if (flags.harness.intra_sparse_entries > 0) {
        config.hierarchy.intra_store.sparse = true;
        config.hierarchy.intra_store.sparse_entries =
            flags.harness.intra_sparse_entries;
      }
      break;
    }
    case 2:  // directoryless: Dir0B broadcasts to everyone on every write
      config.scheme = SchemeConfig::broadcast(point.clusters, 0);
      break;
    default:
      ensure(false, "unknown organization");
  }
  return config;
}

/// Storage accounting for one organization at one size (bits and fraction
/// of main memory; 4 processors per cluster, 16 MB + 256 KB per processor
/// as in Table 1).
struct StorageRow {
  std::uint64_t bits = 0;
  std::uint64_t inter_bits = 0;  ///< two-level only
  std::uint64_t intra_bits = 0;  ///< two-level only
  double fraction = 0.0;
};

StorageRow storage_row(const ScaleFlags& flags, const SizePoint& point,
                       int org) {
  MachineModel machine;
  machine.processors = point.procs;
  machine.procs_per_cluster = point.procs_per_cluster;
  StorageRow row;
  switch (org) {
    case 0: {
      machine.scheme = SchemeConfig::full(point.clusters);
      row.bits = machine.directory_bits();
      row.fraction = machine.overhead_fraction();
      break;
    }
    case 1: {
      HierStorageModel hier;
      hier.machine = machine;
      hier.chips = point.chips;
      hier.inter =
          parse_level_scheme(flags.harness.inter_scheme, point.chips);
      hier.inter_sparsity = 64;  // Section 6's sparse operating point
      hier.intra = parse_level_scheme(flags.harness.intra_scheme,
                                      point.clusters / point.chips);
      row.bits = hier.total_bits();
      row.inter_bits = hier.inter_bits();
      row.intra_bits = hier.intra_bits();
      row.fraction = hier.overhead_fraction();
      break;
    }
    case 2:
      row.bits = dls_directory_bits();
      row.fraction = 0.0;
      break;
    default:
      ensure(false, "unknown organization");
  }
  return row;
}

void emit_curve(const ScaleFlags& flags,
                const std::vector<SizePoint>& points,
                const std::vector<harness::CellResult>& results,
                std::ostream& out) {
  JsonWriter json(out);
  json.begin_object();
  json.field("study", "scale_hierarchy");
  json.field("app", "mp3d");
  json.field("block_size", static_cast<std::uint64_t>(kBlockSize));
  json.field("scale", flags.scale);
  json.field("backend", flags.harness.backend == BackendKind::kQueued
                            ? "queued"
                            : "analytic");
  json.key("points");
  json.begin_array();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SizePoint& point = points[i];
    json.begin_object();
    json.field("procs", static_cast<std::uint64_t>(point.procs));
    json.field("procs_per_cluster",
               static_cast<std::uint64_t>(point.procs_per_cluster));
    json.field("clusters", static_cast<std::uint64_t>(point.clusters));
    json.field("chips", static_cast<std::uint64_t>(point.chips));
    json.key("organizations");
    json.begin_object();
    for (int org = 0; org < 3; ++org) {
      const RunResult& run = results[i * 3 + org].result;
      const StorageRow storage = storage_row(flags, point, org);
      json.key(kOrgNames[org]);
      json.begin_object();
      json.field("directory_bits", storage.bits);
      json.field("overhead_fraction", storage.fraction);
      if (org == 1) {
        json.field("inter_bits", storage.inter_bits);
        json.field("intra_bits", storage.intra_bits);
        json.field("chip_messages", run.protocol.chip_messages.total());
        json.field("chip_local_transactions",
                   run.protocol.chip_local_transactions);
      }
      json.field("messages", run.protocol.messages.total());
      json.field("mean_invals", run.protocol.inval_distribution.mean());
      json.field("exec_cycles", run.exec_cycles);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

int run_main(int argc, char** argv) {
  const ScaleFlags flags = parse_flags(argc, argv);

  std::vector<SizePoint> points;
  std::vector<harness::SweepCell> cells;
  for (const int procs : flags.procs) {
    const SizePoint point = size_point(flags, procs);
    points.push_back(point);
    const harness::TraceSpec trace = harness::app_trace(
        AppKind::kMp3d, procs, kBlockSize, kSeed, flags.scale);
    for (int org = 0; org < 3; ++org) {
      harness::SweepCell cell;
      cell.key = "scale/procs=" + std::to_string(procs) +
                 "/org=" + kOrgNames[org];
      cell.fields = {{"procs", std::to_string(procs)},
                     {"clusters", std::to_string(point.clusters)},
                     {"chips", std::to_string(point.chips)},
                     {"org", kOrgNames[org]}};
      cell.trace = trace;
      cell.system = org_machine(flags, point, org);
      cells.push_back(std::move(cell));
    }
  }
  apply_backend(cells, flags.harness);
  apply_engine_threads(cells, flags.harness);

  harness::SweepRunner runner(flags.harness.threads);
  const std::vector<harness::CellResult> results =
      runner.run(cells, sweep_options(flags.harness));

  std::cout << "Scale study: flat full-map vs two-level "
               "(inter=" << flags.harness.inter_scheme
            << " over sparse, intra=" << flags.harness.intra_scheme
            << ") vs directoryless, MP3D\n\n";
  TextTable table;
  table.header({"procs", "clusters", "chips", "flat ovh", "2L ovh",
                "2L inter/intra", "2L msgs vs flat", "chip msgs share",
                "chip-local txns", "DLS msgs vs flat"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SizePoint& point = points[i];
    const RunResult& flat = results[i * 3 + 0].result;
    const RunResult& hier = results[i * 3 + 1].result;
    const RunResult& dls = results[i * 3 + 2].result;
    const StorageRow flat_storage = storage_row(flags, point, 0);
    const StorageRow hier_storage = storage_row(flags, point, 1);
    const double chip_share =
        hier.protocol.messages.total() == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(hier.protocol.chip_messages.total()) /
                  static_cast<double>(hier.protocol.messages.total());
    table.row(
        {std::to_string(point.procs), std::to_string(point.clusters),
         std::to_string(point.chips),
         fmt(flat_storage.fraction * 100, 1) + "%",
         fmt(hier_storage.fraction * 100, 1) + "%",
         fmt(static_cast<double>(hier_storage.inter_bits) / (1 << 20), 1) +
             "/" +
             fmt(static_cast<double>(hier_storage.intra_bits) / (1 << 20),
                 1) +
             " Mb",
         pct(hier.protocol.messages.total(),
             flat.protocol.messages.total()),
         fmt(chip_share, 1) + "%",
         std::to_string(hier.protocol.chip_local_transactions),
         pct(dls.protocol.messages.total(),
             flat.protocol.messages.total())});
  }
  table.print(std::cout);
  std::cout
      << "\nThe flat full map's overhead grows with the cluster count; the "
         "two-level\norganization prices sharer state per chip at the homes "
         "(plus cache-sized\nintra-chip maps) and keeps most coherence "
         "traffic on chip, while the\ndirectoryless baseline pays for its "
         "zero storage in broadcast traffic.\n";

  if (!flags.curve_json.empty()) {
    if (flags.curve_json == "-") {
      emit_curve(flags, points, results, std::cout);
    } else {
      std::ofstream out(flags.curve_json);
      ensure(static_cast<bool>(out), "cannot open the --curve-json path");
      emit_curve(flags, points, results, out);
    }
  }

  emit_outputs(flags.harness, runner, results);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
