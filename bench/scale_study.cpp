// Scale study: the paper's motivating claim — "a combination of the two
// techniques presented will allow machines to be scaled to hundreds of
// processors while keeping the directory memory overhead reasonable"
// (Section 8).
//
// Sweeps the machine from 16 to 256 clusters, comparing the full bit
// vector's quadratic directory growth against sparse coarse-vector
// directories (constant ~13% overhead), and running MP3D at every size to
// show the coarse vector's traffic staying within a whisker of the full
// vector's as the machine grows.
#include <iostream>

#include "bench_common.hpp"
#include "model/storage_model.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  std::cout << "Scale study: directory overhead and traffic, 16 to 256 "
               "clusters\n\n";
  TextTable table;
  table.header({"clusters", "Dir_P overhead", "sparse(4) CV overhead",
                "CV scheme", "MP3D msgs vs full", "mean invals (full)",
                "mean invals (CV)"});
  for (int clusters : {16, 32, 64, 128, 256}) {
    // Storage: 4 processors per cluster, 16 MB / 256 KB per processor.
    MachineModel full;
    full.processors = clusters * 4;
    full.procs_per_cluster = 4;
    full.scheme = SchemeConfig::full(clusters);

    // Size the coarse vector like the paper: ~2 bytes of pointer state.
    const int pointers = clusters <= 32 ? 3 : 8;
    const int region = clusters <= 32 ? 2 : clusters / 64 * 4;
    const SchemeConfig cv_scheme = SchemeConfig::coarse(
        clusters, pointers, region < 2 ? 2 : region);
    MachineModel cv = full;
    cv.scheme = cv_scheme;
    cv.sparsity = 4;

    // Traffic: MP3D with one processor per cluster at every size.
    const ProgramTrace trace =
        generate_app(AppKind::kMp3d, clusters, kBlockSize, kSeed, 0.25);
    SystemConfig full_config;
    full_config.num_procs = clusters;
    full_config.cache_lines_per_proc = 256;
    full_config.cache_assoc = 4;
    full_config.scheme = SchemeConfig::full(clusters);
    const RunResult full_run = run_trace(full_config, trace);
    SystemConfig cv_config = full_config;
    cv_config.scheme = cv_scheme;
    const RunResult cv_run = run_trace(cv_config, trace);

    table.row({std::to_string(clusters),
               fmt(full.overhead_fraction() * 100, 1) + "%",
               fmt(cv.overhead_fraction() * 100, 1) + "%",
               make_format(cv_scheme)->name(),
               pct(cv_run.protocol.messages.total(),
                   full_run.protocol.messages.total()),
               fmt(full_run.protocol.inval_distribution.mean(), 2),
               fmt(cv_run.protocol.inval_distribution.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe full vector's overhead grows linearly in cluster "
               "count (quadratic in total\nstate); sparse coarse vectors "
               "hold ~13% at every size with near-identical\ntraffic on "
               "migratory workloads.\n";
  return 0;
}
