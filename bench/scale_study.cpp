// Scale study: the paper's motivating claim — "a combination of the two
// techniques presented will allow machines to be scaled to hundreds of
// processors while keeping the directory memory overhead reasonable"
// (Section 8).
//
// Sweeps the machine from 16 to 256 clusters, comparing the full bit
// vector's quadratic directory growth against sparse coarse-vector
// directories (constant ~13% overhead), and running MP3D at every size to
// show the coarse vector's traffic staying within a whisker of the full
// vector's as the machine grows.
//
// The ten simulation cells (five machine sizes x {full, coarse vector})
// run concurrently on the sweep harness; the storage-model arithmetic is
// computed inline while printing.
#include <iostream>

#include "bench_common.hpp"
#include "model/storage_model.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

constexpr int kClusterCounts[] = {16, 32, 64, 128, 256};

SchemeConfig cv_scheme_for(int clusters) {
  // Size the coarse vector like the paper: ~2 bytes of pointer state.
  const int pointers = clusters <= 32 ? 3 : 8;
  const int region = clusters <= 32 ? 2 : clusters / 64 * 4;
  return SchemeConfig::coarse(clusters, pointers, region < 2 ? 2 : region);
}

SystemConfig scale_machine(int clusters, SchemeConfig scheme) {
  SystemConfig config;
  config.num_procs = clusters;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.scheme = scheme;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions options = parse_harness_options(argc, argv);

  std::vector<harness::SweepCell> cells;
  for (int clusters : kClusterCounts) {
    // Traffic: MP3D with one processor per cluster at every size.
    const harness::TraceSpec trace =
        harness::app_trace(AppKind::kMp3d, clusters, kBlockSize, kSeed, 0.25);
    const SchemeConfig schemes[] = {SchemeConfig::full(clusters),
                                    cv_scheme_for(clusters)};
    for (const SchemeConfig& scheme : schemes) {
      const std::string scheme_name = make_format(scheme)->name();
      harness::SweepCell cell;
      cell.key = "scale/clusters=" + std::to_string(clusters) +
                 "/scheme=" + scheme_name;
      cell.fields = {{"clusters", std::to_string(clusters)},
                     {"scheme", scheme_name}};
      cell.trace = trace;
      cell.system = scale_machine(clusters, scheme);
      cells.push_back(std::move(cell));
    }
  }
  apply_backend(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepRunner runner(options.threads);
  const std::vector<harness::CellResult> results =
      runner.run(cells, sweep_options(options));

  std::cout << "Scale study: directory overhead and traffic, 16 to 256 "
               "clusters\n\n";
  TextTable table;
  table.header({"clusters", "Dir_P overhead", "sparse(4) CV overhead",
                "CV scheme", "MP3D msgs vs full", "mean invals (full)",
                "mean invals (CV)"});
  for (std::size_t c = 0; c < std::size(kClusterCounts); ++c) {
    const int clusters = kClusterCounts[c];
    // Storage: 4 processors per cluster, 16 MB / 256 KB per processor.
    MachineModel full;
    full.processors = clusters * 4;
    full.procs_per_cluster = 4;
    full.scheme = SchemeConfig::full(clusters);

    const SchemeConfig cv_scheme = cv_scheme_for(clusters);
    MachineModel cv = full;
    cv.scheme = cv_scheme;
    cv.sparsity = 4;

    const RunResult& full_run = results[c * 2].result;
    const RunResult& cv_run = results[c * 2 + 1].result;

    table.row({std::to_string(clusters),
               fmt(full.overhead_fraction() * 100, 1) + "%",
               fmt(cv.overhead_fraction() * 100, 1) + "%",
               make_format(cv_scheme)->name(),
               pct(cv_run.protocol.messages.total(),
                   full_run.protocol.messages.total()),
               fmt(full_run.protocol.inval_distribution.mean(), 2),
               fmt(cv_run.protocol.inval_distribution.mean(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nThe full vector's overhead grows linearly in cluster "
               "count (quadratic in total\nstate); sparse coarse vectors "
               "hold ~13% at every size with near-identical\ntraffic on "
               "migratory workloads.\n";

  emit_outputs(options, runner, results);
  return 0;
}
