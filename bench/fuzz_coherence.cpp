// Randomized coherence stress fuzzer (src/check).
//
// Sweeps adversarial synthetic traces (hot-block contention, false
// sharing, lock/barrier storms, eviction pressure sized to force sparse
// victimization and pointer overflow) over a seed x scheme x configuration
// grid, with the invariant oracle attached to every cell. Four fault
// modes seed deliberate protocol mutations — forget a sharer, lose an
// invalidation, drop a sparse-victim writeback, and (with --chips > 1)
// forget an inter-chip sharer — to prove the oracle catches real coherence
// bugs; `--faults none` cells must stay clean, and any violation there is
// a genuine protocol bug. --chips > 1 fuzzes the two-level machine
// (docs/HIERARCHY.md) with the cross-level invariants audited.
//
// A failing cell can be delta-debugged to a minimal trace (--minimize) and
// dumped as a replayable trace file plus an event timeline of the final
// cycles (--dump DIR); --replay FILE re-runs such a trace under the same
// machine configuration flags.
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "check/fuzz.hpp"
#include "check/minimize.hpp"
#include "trace/trace_file.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

SchemeConfig scheme_by_name(const std::string& name, int nodes) {
  if (name == "full") {
    return SchemeConfig::full(nodes);
  }
  if (name == "cv") {
    return SchemeConfig::coarse(nodes, 3, 2);
  }
  if (name == "b") {
    return SchemeConfig::broadcast(nodes, 3);
  }
  if (name == "nb") {
    return SchemeConfig::no_broadcast(nodes, 3);
  }
  std::cerr << "unknown scheme '" << name << "' (full, cv, b, nb)\n";
  std::exit(2);
}

check::FaultKind fault_by_name(const std::string& name) {
  if (name == "none") {
    return check::FaultKind::kNone;
  }
  if (name == "sharer") {
    return check::FaultKind::kForgetSharer;
  }
  if (name == "inval") {
    return check::FaultKind::kSkipInvalidation;
  }
  if (name == "writeback") {
    return check::FaultKind::kDropVictimWriteback;
  }
  if (name == "chip-sharer") {
    // Two-level machines only (--chips > 1): the inter-chip directory
    // drops an add-chip. Never fires on a flat machine.
    return check::FaultKind::kForgetChipSharer;
  }
  std::cerr << "unknown fault '" << name
            << "' (none, sharer, inval, writeback, chip-sharer)\n";
  std::exit(2);
}

struct FuzzFlags {
  HarnessOptions harness;
  std::vector<std::string> schemes;
  std::vector<std::string> faults;
  std::vector<int> sparse_entries;  ///< per home; 0 = full directory
  int seeds = 8;
  std::uint64_t seed_base = kSeed;
  std::uint64_t fault_trigger = 4;
  int procs = 16;
  int cache_lines = 16;
  int cache_assoc = 2;
  int sparse_assoc = 2;
  int l1_lines = 0;
  int rounds = 4;
  int units = 40;
  int hot = 4;
  int pool = 192;
  int locks = 4;
  bool minimize = false;
  std::string dump_dir;
  std::string replay_path;
  bool require_caught = false;
};

FuzzFlags parse_flags(int argc, const char* const* argv) {
  CliParser cli;
  cli.add_option("schemes", "full,cv,b,nb",
                 "directory schemes to fuzz (full,cv,b,nb)");
  cli.add_option("faults", "none,sharer,inval,writeback",
                 "seeded protocol mutations (none,sharer,inval,writeback; "
                 "chip-sharer needs --chips > 1)");
  cli.add_option("sparse-entries", "0,8",
                 "sparse directory entries per home cluster (0 = full "
                 "directory); undersize it so victimization happens");
  cli.add_option("seeds", "8", "fuzz trace seeds per grid point");
  cli.add_option("seed-base", "1990", "first trace seed");
  cli.add_option("fault-trigger", "4",
                 "fire the seeded fault on this corrupting opportunity");
  cli.add_option("procs", "16", "processors (one per cluster)");
  cli.add_option("cache-lines", "16",
                 "cache lines per processor (small = eviction pressure)");
  cli.add_option("cache-assoc", "2", "cache associativity");
  cli.add_option("sparse-assoc", "2",
                 "sparse directory associativity (1 = direct-mapped)");
  cli.add_option("l1-lines", "0",
                 "first-level cache lines per processor (0 = single level)");
  cli.add_option("rounds", "4", "barrier-delimited rounds per trace");
  cli.add_option("units", "40", "work units per processor per round");
  cli.add_option("hot", "4", "hot (contended) blocks");
  cli.add_option("pool", "192", "scatter-pool blocks");
  cli.add_option("locks", "4", "locks (each guards a block)");
  cli.add_flag("minimize",
               "delta-debug the first failing cell of each fault kind");
  cli.add_option("dump", "",
                 "write minimized traces + timelines into this directory");
  cli.add_option("replay", "",
                 "replay a dumped trace file under the first "
                 "scheme/fault/sparse configuration and report");
  cli.add_flag("require-caught",
               "exit nonzero unless every injected fault was caught (CI)");
  add_harness_options(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    std::exit(0);
  }
  FuzzFlags flags;
  flags.harness = read_harness_options(cli);
  flags.schemes = split_list(cli.get("schemes"));
  flags.faults = split_list(cli.get("faults"));
  for (const std::string& item : split_list(cli.get("sparse-entries"))) {
    flags.sparse_entries.push_back(std::stoi(item));
  }
  flags.seeds = static_cast<int>(cli.get_int("seeds"));
  flags.seed_base = static_cast<std::uint64_t>(cli.get_int("seed-base"));
  flags.fault_trigger =
      static_cast<std::uint64_t>(cli.get_int("fault-trigger"));
  flags.procs = static_cast<int>(cli.get_int("procs"));
  flags.cache_lines = static_cast<int>(cli.get_int("cache-lines"));
  flags.cache_assoc = static_cast<int>(cli.get_int("cache-assoc"));
  flags.sparse_assoc = static_cast<int>(cli.get_int("sparse-assoc"));
  flags.l1_lines = static_cast<int>(cli.get_int("l1-lines"));
  flags.rounds = static_cast<int>(cli.get_int("rounds"));
  flags.units = static_cast<int>(cli.get_int("units"));
  flags.hot = static_cast<int>(cli.get_int("hot"));
  flags.pool = static_cast<int>(cli.get_int("pool"));
  flags.locks = static_cast<int>(cli.get_int("locks"));
  flags.minimize = cli.get_flag("minimize");
  flags.dump_dir = cli.get("dump");
  flags.replay_path = cli.get("replay");
  flags.require_caught = cli.get_flag("require-caught");
  ensure(!flags.schemes.empty() && !flags.faults.empty() &&
             !flags.sparse_entries.empty() && flags.seeds >= 1,
         "fuzz grid must be non-empty");
  return flags;
}

check::FuzzTraceConfig trace_config(const FuzzFlags& flags,
                                    std::uint64_t seed) {
  check::FuzzTraceConfig config;
  config.procs = flags.procs;
  config.block_size = kBlockSize;
  config.rounds = flags.rounds;
  config.units_per_round = flags.units;
  config.hot_blocks = flags.hot;
  config.pool_blocks = flags.pool;
  config.num_locks = flags.locks;
  config.seed = seed;
  return config;
}

SystemConfig system_config(const FuzzFlags& flags, const std::string& scheme,
                           check::FaultKind fault, int sparse,
                           const std::string& key) {
  SystemConfig config;
  config.num_procs = flags.procs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc =
      static_cast<std::uint64_t>(flags.cache_lines);
  config.cache_assoc = static_cast<std::uint64_t>(flags.cache_assoc);
  config.l1_lines_per_proc = static_cast<std::uint64_t>(flags.l1_lines);
  config.l1_assoc = 2;
  config.block_size = kBlockSize;
  config.scheme = scheme_by_name(scheme, flags.procs);
  if (sparse > 0) {
    config.store.sparse = true;
    // Round up to a whole number of sparse-assoc-way sets.
    const int assoc = flags.sparse_assoc;
    config.store.sparse_entries =
        static_cast<std::uint64_t>((sparse + assoc - 1) / assoc * assoc);
    config.store.sparse_assoc = static_cast<std::uint64_t>(assoc);
    config.store.policy = ReplPolicy::kRandom;
  }
  // Fault runs corrupt state on purpose: the protocol's own [[noreturn]]
  // value-coherence spot check must stay out of the way — the invariant
  // oracle is the failure detector here.
  config.validate = false;
  config.backend = flags.harness.backend;
  config.fault.kind = fault;
  config.fault.trigger = flags.fault_trigger;
  config.seed = harness::cell_seed(flags.seed_base, key);
  // --chips > 1 fuzzes the two-level machine (the chip-sharer fault only
  // has a site there); the oracle audits the cross-level invariants too.
  apply_hierarchy(config, flags.harness);
  return config;
}

/// Per-cell identity within the grid, recoverable from the key.
struct CellSpec {
  std::string scheme;
  std::string fault;
  int sparse = 0;
  std::uint64_t seed = 0;
};

int replay(const FuzzFlags& flags) {
  ProgramTrace trace;
  if (!load_trace(flags.replay_path, trace)) {
    std::cerr << "cannot load trace file " << flags.replay_path << "\n";
    return 2;
  }
  const std::string& scheme = flags.schemes.front();
  const check::FaultKind fault = fault_by_name(flags.faults.front());
  const int sparse = flags.sparse_entries.front();
  const SystemConfig config =
      system_config(flags, scheme, fault, sparse,
                    "replay/" + flags.replay_path);
  std::cout << "replaying " << flags.replay_path << " ("
            << trace.total_events() << " events, " << trace.num_procs()
            << " procs) under scheme=" << scheme
            << " fault=" << flags.faults.front() << " sparse=" << sparse
            << "\n";
  const check::CheckedRun run =
      check::run_checked(config, EngineConfig{}, trace);
  std::cout << "accesses=" << run.report.accesses_observed
            << " audits=" << run.report.audits
            << " faults_injected=" << run.report.faults_injected
            << (run.report.halted ? " (halted)" : "") << "\n";
  if (!run.report.failed()) {
    std::cout << "no violations\n";
    return 0;
  }
  for (const check::Violation& violation : run.report.violations) {
    std::cout << "  " << check::violation_to_string(violation) << "\n";
  }
  if (run.report.violations_suppressed > 0) {
    std::cout << "  (+" << run.report.violations_suppressed
              << " suppressed)\n";
  }
  return 0;
}

void dump_failure(const FuzzFlags& flags, const harness::SweepCell& cell,
                  const CellSpec& spec, const check::MinimizeResult& min) {
  const std::filesystem::path dir(flags.dump_dir);
  std::filesystem::create_directories(dir);
  const std::string stem = sanitize_key(cell.key);
  const std::string trace_path = (dir / (stem + ".trace")).string();
  ensure(save_trace(trace_path, min.trace), "cannot write the trace dump");

  // Re-run the minimized trace with a timeline recorder attached, so the
  // dump includes the final cycles' event history alongside the trace.
  obs::TraceRecorder recorder(cell.system.num_procs,
                              cell.system.num_clusters());
  const check::CheckedRun rerun = check::run_checked(
      cell.system, cell.engine, min.trace, check::CheckConfig{}, &recorder);
  {
    std::ofstream out(dir / (stem + ".timeline.json"));
    ensure(static_cast<bool>(out), "cannot write the timeline dump");
    recorder.write_chrome_json(out);
  }
  {
    std::ofstream out(dir / (stem + ".report.txt"));
    ensure(static_cast<bool>(out), "cannot write the report dump");
    out << "cell: " << cell.key << "\n"
        << "trace: " << trace_path << " (" << min.minimized_events
        << " events, minimized from " << min.original_events << " in "
        << min.probes << " probes)\n";
    for (const check::Violation& violation : rerun.report.violations) {
      out << check::violation_to_string(violation) << "\n";
    }
    out << "replay: fuzz_coherence --replay " << trace_path
        << " --schemes " << spec.scheme << " --faults " << spec.fault
        << " --sparse-entries " << spec.sparse << " --fault-trigger "
        << flags.fault_trigger << " --procs " << flags.procs
        << " --cache-lines " << flags.cache_lines << " --l1-lines "
        << flags.l1_lines << "\n";
  }
  std::cout << "  dumped " << trace_path << " (+timeline, +report)\n";
}

}  // namespace

int run_main(int argc, char** argv) {
  const FuzzFlags flags = parse_flags(argc, argv);
  if (!flags.replay_path.empty()) {
    return replay(flags);
  }

  std::vector<harness::SweepCell> cells;
  std::vector<CellSpec> specs;
  for (const std::string& scheme : flags.schemes) {
    for (const std::string& fault_name : flags.faults) {
      const check::FaultKind fault = fault_by_name(fault_name);
      for (const int sparse : flags.sparse_entries) {
        for (int s = 0; s < flags.seeds; ++s) {
          const std::uint64_t seed =
              flags.seed_base + static_cast<std::uint64_t>(s);
          harness::SweepCell cell;
          cell.key = "fuzz/scheme=" + scheme + "/fault=" + fault_name +
                     "/sparse=" + std::to_string(sparse) +
                     "/seed=" + std::to_string(seed);
          cell.fields = {{"scheme", scheme},
                         {"fault", fault_name},
                         {"sparse", std::to_string(sparse)},
                         {"seed", std::to_string(seed)}};
          const check::FuzzTraceConfig tc = trace_config(flags, seed);
          cell.trace = {check::fuzz_trace_key(tc),
                        [tc] { return check::generate_fuzz_trace(tc); }};
          cell.system =
              system_config(flags, scheme, fault, sparse, cell.key);
          cells.push_back(std::move(cell));
          specs.push_back({scheme, fault_name, sparse, seed});
        }
      }
    }
  }

  apply_engine_threads(cells, flags.harness);

  harness::SweepRunner runner(flags.harness.threads);
  harness::SweepOptions options = sweep_options(flags.harness);
  options.check = true;
  const std::vector<harness::CellResult> results =
      runner.run(cells, options);

  if (!check::compiled()) {
    std::cout << "fuzz_coherence: checking compiled out (DIRCC_CHECK=0); "
                 "nothing verified\n";
    return flags.require_caught ? 1 : 0;
  }

  // Per fault kind: cells run / cells where the fault fired / caught.
  struct KindTally {
    int cells = 0;
    int injected = 0;
    int caught = 0;
  };
  std::map<std::string, KindTally> tally;
  int clean_failures = 0;
  int missed_faults = 0;
  std::map<std::string, std::size_t> first_failure;  // fault -> cell index
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& report = *results[i].check;
    KindTally& t = tally[specs[i].fault];
    ++t.cells;
    const bool injected = report.faults_injected > 0;
    if (injected) {
      ++t.injected;
    }
    if (report.failed()) {
      if (specs[i].fault == "none") {
        // No seeded fault: a violation is a genuine protocol bug.
        ++clean_failures;
        std::cout << "GENUINE VIOLATION in " << results[i].key << ":\n  "
                  << check::violation_to_string(
                         report.violations.front())
                  << "\n";
      } else {
        ++t.caught;
        first_failure.emplace(specs[i].fault, i);
      }
    } else if (injected) {
      ++missed_faults;
      std::cout << "MISSED: fault fired but no violation in "
                << results[i].key << "\n";
    }
  }

  std::cout << "fuzz_coherence: " << results.size() << " cells ("
            << flags.schemes.size() << " schemes x " << flags.faults.size()
            << " faults x " << flags.sparse_entries.size() << " sparse x "
            << flags.seeds << " seeds)\n\n";
  TextTable table;
  table.header({"fault", "cells", "injected", "caught"});
  for (const auto& [fault, t] : tally) {
    table.row({fault, fmt_count(static_cast<std::uint64_t>(t.cells)),
               fmt_count(static_cast<std::uint64_t>(t.injected)),
               fmt_count(static_cast<std::uint64_t>(t.caught))});
  }
  table.print(std::cout);
  std::cout << "\n";
  for (const auto& [fault, index] : first_failure) {
    const auto& report = *results[index].check;
    std::cout << "first " << fault << " failure (" << results[index].key
              << "):\n  "
              << check::violation_to_string(report.violations.front())
              << "\n";
  }

  if (flags.minimize) {
    std::cout << "\n";
    for (const auto& [fault, index] : first_failure) {
      const harness::SweepCell& cell = cells[index];
      const ProgramTrace trace = *runner.trace_cache().get(cell.trace);
      std::cout << "minimizing " << cell.key << " ("
                << trace.total_events() << " events)...\n";
      const auto min = check::minimize_failure(trace, cell.system,
                                               cell.engine, options.check_config);
      if (!min) {
        std::cout << "  not reproducible outside the sweep?!\n";
        continue;
      }
      std::cout << "  " << min->original_events << " -> "
                << min->minimized_events << " events in " << min->probes
                << " probes; first violation: "
                << check::violation_to_string(
                       min->report.violations.front())
                << "\n";
      if (!flags.dump_dir.empty()) {
        dump_failure(flags, cell, specs[index], *min);
      }
    }
  }

  emit_outputs(flags.harness, runner, results);

  if (clean_failures > 0) {
    std::cerr << "\nFAIL: " << clean_failures
              << " violation(s) with no seeded fault — genuine protocol "
                 "bug(s)\n";
    return 1;
  }
  if (flags.require_caught) {
    bool ok = missed_faults == 0;
    for (const auto& [fault, t] : tally) {
      if (fault == "none") {
        continue;
      }
      if (t.injected == 0) {
        std::cerr << "FAIL: fault '" << fault
                  << "' never fired anywhere in the grid (raise pressure "
                     "or lower --fault-trigger)\n";
        ok = false;
      }
    }
    if (missed_faults > 0) {
      std::cerr << "FAIL: " << missed_faults
                << " cell(s) injected a fault the oracle missed\n";
    }
    if (!ok) {
      return 1;
    }
    std::cout << "\nall injected faults caught; all clean cells clean\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
