// Figures 7-10: normalized execution time and message traffic of the four
// directory schemes on LU, DWF, MP3D and LocusRoute (32 processors,
// non-sparse directories).
//
// Paper shape (Section 6.2):
//  * LU (Fig. 7)         — Dir3NB blows up (pivot column read by all);
//                          full/CV/B indistinguishable.
//  * DWF (Fig. 8)        — same story via the read-only pattern arrays.
//  * MP3D (Fig. 9)       — migratory 1-2 sharers: every scheme fine.
//  * LocusRoute (Fig.10) — Dir3B broadcasts on ~4-8-sharer writes; the only
//                          app where Dir3NB beats Dir3B; Dir3CV2 stays
//                          within ~12% of the full vector's traffic.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  struct Panel {
    const char* figure;
    AppKind app;
  };
  const Panel panels[] = {
      {"Figure 7", AppKind::kLu},
      {"Figure 8", AppKind::kDwf},
      {"Figure 9", AppKind::kMp3d},
      {"Figure 10", AppKind::kLocusRoute},
  };
  const SchemeConfig schemes[] = {scheme_full(), scheme_cv(), scheme_b(),
                                  scheme_nb()};

  for (const Panel& panel : panels) {
    const ProgramTrace trace =
        generate_app(panel.app, kProcs, kBlockSize, kSeed, 1.0);
    std::cout << panel.figure << ": performance for " << trace.app_name
              << " (normalized to " << make_format(scheme_full())->name()
              << " = 100)\n\n";

    RunResult baseline;
    TextTable table;
    table.header({"scheme", "exec time", "requests+wb", "replies",
                  "inv+ack", "total msgs", "extraneous", "inval events",
                  "mean invals"});
    for (const SchemeConfig& scheme : schemes) {
      const RunResult result = run_trace(machine(scheme), trace);
      if (scheme.kind == SchemeKind::kFullBitVector) {
        baseline = result;
      }
      const MessageCounters& m = result.protocol.messages;
      const MessageCounters& bm = baseline.protocol.messages;
      table.row({make_format(scheme)->name(),
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(m.requests_with_writebacks(),
                     bm.requests_with_writebacks()),
                 pct(m.get(MsgClass::kReply), bm.get(MsgClass::kReply)),
                 pct(m.inv_plus_ack(), bm.inv_plus_ack()),
                 pct(m.total(), bm.total()),
                 fmt_count(result.protocol.extraneous_invalidations),
                 fmt_count(result.protocol.inval_distribution.events()),
                 fmt(result.protocol.inval_distribution.mean(), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
