// Figures 7-10: normalized execution time and message traffic of the four
// directory schemes on LU, DWF, MP3D and LocusRoute (32 processors,
// non-sparse directories).
//
// Paper shape (Section 6.2):
//  * LU (Fig. 7)         — Dir3NB blows up (pivot column read by all);
//                          full/CV/B indistinguishable.
//  * DWF (Fig. 8)        — same story via the read-only pattern arrays.
//  * MP3D (Fig. 9)       — migratory 1-2 sharers: every scheme fine.
//  * LocusRoute (Fig.10) — Dir3B broadcasts on ~4-8-sharer writes; the only
//                          app where Dir3NB beats Dir3B; Dir3CV2 stays
//                          within ~12% of the full vector's traffic.
//
// Runs the 4-app x 4-scheme grid on the sweep harness: each app's trace is
// generated once and shared, and the 16 cells execute concurrently
// (--threads N; --json PATH dumps per-cell records).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dircc;
  using namespace dircc::bench;

  const HarnessOptions options = parse_harness_options(argc, argv);

  struct Panel {
    const char* figure;
    AppKind app;
  };
  const Panel panels[] = {
      {"Figure 7", AppKind::kLu},
      {"Figure 8", AppKind::kDwf},
      {"Figure 9", AppKind::kMp3d},
      {"Figure 10", AppKind::kLocusRoute},
  };
  const SchemeConfig schemes[] = {scheme_full(), scheme_cv(), scheme_b(),
                                  scheme_nb()};

  std::vector<harness::SweepCell> cells;
  for (const Panel& panel : panels) {
    for (const SchemeConfig& scheme : schemes) {
      const std::string scheme_name = make_format(scheme)->name();
      harness::SweepCell cell;
      cell.key = std::string("fig07_10/app=") + app_name(panel.app) +
                 "/scheme=" + scheme_name;
      cell.fields = {{"app", app_name(panel.app)}, {"scheme", scheme_name}};
      cell.trace =
          harness::app_trace(panel.app, kProcs, kBlockSize, kSeed, 1.0);
      cell.system = machine(scheme);
      cells.push_back(std::move(cell));
    }
  }
  apply_backend(cells, options);
  apply_hierarchy(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepRunner runner(options.threads);
  const std::vector<harness::CellResult> results =
      runner.run(cells, sweep_options(options));

  constexpr int kSchemes = 4;
  for (std::size_t p = 0; p < std::size(panels); ++p) {
    const Panel& panel = panels[p];
    // The full bit vector is the first cell of each panel's row block.
    const RunResult& baseline = results[p * kSchemes].result;
    std::cout << panel.figure << ": performance for "
              << app_name(panel.app) << " (normalized to "
              << make_format(scheme_full())->name() << " = 100)\n\n";

    TextTable table;
    table.header({"scheme", "exec time", "requests+wb", "replies",
                  "inv+ack", "total msgs", "extraneous", "inval events",
                  "mean invals"});
    for (int s = 0; s < kSchemes; ++s) {
      const harness::CellResult& cell = results[p * kSchemes +
                                                static_cast<std::size_t>(s)];
      const RunResult& result = cell.result;
      const MessageCounters& m = result.protocol.messages;
      const MessageCounters& bm = baseline.protocol.messages;
      table.row({make_format(schemes[s])->name(),
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(m.requests_with_writebacks(),
                     bm.requests_with_writebacks()),
                 pct(m.get(MsgClass::kReply), bm.get(MsgClass::kReply)),
                 pct(m.inv_plus_ack(), bm.inv_plus_ack()),
                 pct(m.total(), bm.total()),
                 fmt_count(result.protocol.extraneous_invalidations),
                 fmt_count(result.protocol.inval_distribution.events()),
                 fmt(result.protocol.inval_distribution.mean(), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  emit_outputs(options, runner, results);
  return 0;
}
