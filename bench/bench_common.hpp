// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every harness builds SystemConfigs with the paper's simulation parameters
// (Section 5: 32 processors, one per cluster, 16-byte blocks), runs
// generated application traces through the engine, and prints paper-style
// rows. The bench binaries do not try to match the paper's absolute cycle
// counts — the substrate is a reimplemented simulator — but the normalized
// comparisons (who wins, by what factor) are the reproduction target.
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/ensure.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "harness/sink.hpp"
#include "harness/sweep.hpp"
#include "obs/attrib/report.hpp"
#include "obs/metrics.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "sim/run_metrics.hpp"
#include "sim/sharded_engine.hpp"
#include "trace/generators.hpp"

namespace dircc::bench {

inline constexpr int kProcs = 32;
inline constexpr int kBlockSize = 16;
inline constexpr std::uint64_t kSeed = 1990;

/// Strictly parses one token of a comma-list option as an integer: the
/// whole token must be numeric or this throws CliError naming the option
/// (rendered as a clean usage error by run_cli). std::stoi would accept
/// "1.5" as 1 and abort the process on "abc".
inline std::int64_t parse_int_token(const std::string& option,
                                    const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size() ||
      errno == ERANGE) {
    throw CliError("option --" + option + " expects integers, got '" +
                   token + "'");
  }
  return value;
}

/// The paper's four studied schemes at the ~17-bit directory budget
/// (Section 5: three pointers, coarse regions of two).
inline SchemeConfig scheme_full() { return SchemeConfig::full(kProcs); }
inline SchemeConfig scheme_cv() { return SchemeConfig::coarse(kProcs, 3, 2); }
inline SchemeConfig scheme_b() { return SchemeConfig::broadcast(kProcs, 3); }
inline SchemeConfig scheme_nb() {
  return SchemeConfig::no_broadcast(kProcs, 3);
}

/// Non-sparse machine used for the scheme-comparison figures.
inline SystemConfig machine(SchemeConfig scheme,
                            std::uint64_t cache_lines_per_proc = 1024) {
  SystemConfig config;
  config.num_procs = kProcs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = cache_lines_per_proc;
  config.cache_assoc = 4;
  config.block_size = kBlockSize;
  config.scheme = scheme;
  config.seed = kSeed;
  return config;
}

/// Adds a sparse directory of `size_factor` x (total cache lines),
/// distributed over the per-cluster directories.
inline void make_sparse(SystemConfig& config, int size_factor,
                        int associativity = 4,
                        ReplPolicy policy = ReplPolicy::kRandom) {
  const std::uint64_t total_cache_lines =
      config.cache_lines_per_proc *
      static_cast<std::uint64_t>(config.num_procs);
  const auto clusters = static_cast<std::uint64_t>(config.num_clusters());
  std::uint64_t per_home =
      total_cache_lines * static_cast<std::uint64_t>(size_factor) / clusters;
  // Round up to a whole number of sets.
  const auto assoc = static_cast<std::uint64_t>(associativity);
  per_home = ceil_div(per_home, assoc) * assoc;
  config.store.sparse = true;
  config.store.sparse_entries = per_home;
  config.store.sparse_assoc = associativity;
  config.store.policy = policy;
}

/// Runs `trace` on `config` and returns the result.
inline RunResult run_trace(const SystemConfig& config,
                           const ProgramTrace& trace) {
  CoherenceSystem system(config);
  Engine engine(system, trace);
  return engine.run();
}

/// Percentage string relative to a baseline ("100" = equal).
inline std::string pct(double value, double baseline) {
  if (baseline == 0) {
    return "-";
  }
  return fmt(100.0 * value / baseline, 1);
}

inline std::string pct(std::uint64_t value, std::uint64_t baseline) {
  return pct(static_cast<double>(value), static_cast<double>(baseline));
}

/// Options shared by every sweep-harness-backed figure binary.
struct HarnessOptions {
  int threads = 0;        ///< worker threads; 0 = hardware concurrency
  int engine_threads = 1;  ///< threads *inside* each run (sharded engine)
  std::string json_path;  ///< empty = no JSON; "-" = stdout
  bool omit_timing = false;
  bool progress = false;     ///< live progress/ETA line on stderr
  std::string trace_out;     ///< directory for per-cell event timelines
  std::string metrics_path;  ///< metrics+telemetry doc; "-" = stdout
  std::string attrib_out;    ///< directory for per-cell latency attribution
  BackendKind backend = BackendKind::kAnalytic;  ///< latency backend
  // Two-level hierarchy flag family (docs/HIERARCHY.md); chips == 1 keeps
  // every harness on the flat machine exactly as before.
  int chips = 1;
  std::string inter_scheme = "full";
  std::string intra_scheme = "full";
  std::uint64_t inter_sparse_entries = 0;  ///< per home cluster; 0 = dense
  std::uint64_t intra_sparse_entries = 0;  ///< per chip; 0 = dense
};

/// Parses a --backend value; exits with a usage error on anything other
/// than "analytic" or "queued".
inline BackendKind parse_backend(const std::string& name) {
  if (name == "analytic") {
    return BackendKind::kAnalytic;
  }
  if (name == "queued") {
    return BackendKind::kQueued;
  }
  std::cerr << "unknown --backend '" << name
            << "' (expected 'analytic' or 'queued')\n";
  std::exit(2);
}

/// Registers the shared observability options on an existing parser, so
/// Registers the shared two-level-hierarchy flag family
/// (docs/HIERARCHY.md) on an existing parser. Split from
/// add_harness_options so sweep_grid (which registers the other shared
/// flags itself for different defaults) exposes the identical family.
inline void add_hierarchy_options(CliParser& cli) {
  cli.add_option("chips", "1",
                 "chips of the two-level hierarchy (must divide the cluster "
                 "count; 1 = the flat machine, docs/HIERARCHY.md)");
  cli.add_option("inter-scheme", "full",
                 "inter-chip directory scheme over chips (full, cv, b, nb); "
                 "meaningful with --chips > 1");
  cli.add_option("intra-scheme", "full",
                 "intra-chip directory scheme over a chip's clusters "
                 "(full, cv, b, nb); meaningful with --chips > 1");
  cli.add_option("inter-sparse-entries", "0",
                 "sparse inter-chip directory entries per home cluster "
                 "(0 = dense full map)");
  cli.add_option("intra-sparse-entries", "0",
                 "sparse intra-chip directory entries per chip "
                 "(0 = dense full map)");
}

/// Reads the hierarchy flag family back into `options`.
inline void read_hierarchy_options(const CliParser& cli,
                                   HarnessOptions& options) {
  options.chips = static_cast<int>(cli.get_int("chips"));
  options.inter_scheme = cli.get("inter-scheme");
  options.intra_scheme = cli.get("intra-scheme");
  options.inter_sparse_entries =
      static_cast<std::uint64_t>(cli.get_int("inter-sparse-entries"));
  options.intra_sparse_entries =
      static_cast<std::uint64_t>(cli.get_int("intra-sparse-entries"));
}

/// sweep_grid (which has its own grid options) and the figure binaries
/// expose identical flags.
inline void add_harness_options(CliParser& cli) {
  cli.add_option("threads", "0",
                 "sweep worker threads (0 = hardware concurrency)");
  cli.add_option("engine-threads", "1",
                 "threads per simulation run (sharded engine; results are "
                 "byte-identical at any value, see docs/PARALLELISM.md)");
  cli.add_option("json", "",
                 "write per-cell JSON Lines here ('-' = stdout)");
  cli.add_flag("omit-timing",
               "omit per-cell wall-clock from the JSON records");
  cli.add_flag("progress", "report live sweep progress/ETA on stderr");
  cli.add_option("trace-out", "",
                 "write per-cell Chrome-trace timelines into this directory");
  cli.add_option("metrics", "",
                 "write sweep telemetry + per-cell metrics JSON here "
                 "('-' = stdout)");
  cli.add_option("attrib-out", "",
                 "write per-cell latency attribution (JSON + CSV) into "
                 "this directory (per-hop detail needs --backend queued)");
  cli.add_option("backend", "analytic",
                 "latency backend: 'analytic' (paper-faithful closed-form, "
                 "the default) or 'queued' (per-link/per-home FIFO "
                 "contention)");
  add_hierarchy_options(cli);
}

/// Reads the shared observability options back out of a parsed parser.
inline HarnessOptions read_harness_options(const CliParser& cli) {
  HarnessOptions options;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.engine_threads =
      std::max(1, static_cast<int>(cli.get_int("engine-threads")));
  options.json_path = cli.get("json");
  options.omit_timing = cli.get_flag("omit-timing");
  options.progress = cli.get_flag("progress");
  options.trace_out = cli.get("trace-out");
  options.metrics_path = cli.get("metrics");
  options.attrib_out = cli.get("attrib-out");
  options.backend = parse_backend(cli.get("backend"));
  read_hierarchy_options(cli, options);
  return options;
}

/// Parses --threads/--json/--omit-timing/--progress/--trace-out/--metrics
/// (the figure binaries stay argument-free by default: every option has a
/// default).
inline HarnessOptions parse_harness_options(int argc,
                                            const char* const* argv) {
  CliParser cli;
  add_harness_options(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    std::exit(0);
  }
  return read_harness_options(cli);
}

/// Sweep knobs implied by the harness options: recording is on exactly
/// when a --trace-out directory was given.
inline harness::SweepOptions sweep_options(const HarnessOptions& options) {
  harness::SweepOptions sweep;
  sweep.record_traces = !options.trace_out.empty();
  sweep.attrib = !options.attrib_out.empty();
  sweep.progress = options.progress;
  return sweep;
}

/// Applies the selected latency backend to every sweep cell. Kept as a
/// separate pass (rather than baked into machine()) so the cell grids stay
/// backend-agnostic and the choice is visibly per sweep, not per helper.
inline void apply_backend(std::vector<harness::SweepCell>& cells,
                          const HarnessOptions& options) {
  for (harness::SweepCell& cell : cells) {
    cell.system.backend = options.backend;
  }
}

/// Directory scheme for one hierarchy level, by the same names the flat
/// harnesses use, instantiated over `nodes` (chips for the inter level, a
/// chip's clusters for the intra level).
inline SchemeConfig parse_level_scheme(const std::string& name, int nodes) {
  if (name == "full") {
    return SchemeConfig::full(nodes);
  }
  if (name == "cv") {
    return SchemeConfig::coarse(nodes, 3, 2);
  }
  if (name == "b") {
    return SchemeConfig::broadcast(nodes, 3);
  }
  if (name == "nb") {
    return SchemeConfig::no_broadcast(nodes, 3);
  }
  ensure(false, "unknown level scheme (expected full, cv, b or nb)");
  return SchemeConfig::full(nodes);
}

/// Applies the --chips / --inter-scheme / --intra-scheme /
/// --*-sparse-entries family to one machine configuration. A no-op at
/// --chips 1, so every harness output stays byte-identical to the flat
/// binaries unless the hierarchy is explicitly requested.
inline void apply_hierarchy(SystemConfig& system,
                            const HarnessOptions& options) {
  if (options.chips <= 1) {
    return;
  }
  const int clusters = system.num_clusters();
  ensure(clusters % options.chips == 0,
         "--chips must divide the machine's cluster count");
  HierarchyConfig hierarchy;
  hierarchy.chips = options.chips;
  hierarchy.inter = parse_level_scheme(options.inter_scheme, options.chips);
  hierarchy.intra =
      parse_level_scheme(options.intra_scheme, clusters / options.chips);
  if (options.inter_sparse_entries > 0) {
    hierarchy.inter_store.sparse = true;
    hierarchy.inter_store.sparse_entries = options.inter_sparse_entries;
  }
  if (options.intra_sparse_entries > 0) {
    hierarchy.intra_store.sparse = true;
    hierarchy.intra_store.sparse_entries = options.intra_sparse_entries;
  }
  system.hierarchy = hierarchy;
}

/// The sweep-cell form of apply_hierarchy, matching the other apply passes.
inline void apply_hierarchy(std::vector<harness::SweepCell>& cells,
                            const HarnessOptions& options) {
  for (harness::SweepCell& cell : cells) {
    apply_hierarchy(cell.system, options);
  }
}

/// Applies --engine-threads to every sweep cell. Pure execution knob: cell
/// results are byte-identical at any value (docs/PARALLELISM.md); the sweep
/// runner composes it with its own pool so cells x engine threads never
/// oversubscribe the host.
inline void apply_engine_threads(std::vector<harness::SweepCell>& cells,
                                 const HarnessOptions& options) {
  for (harness::SweepCell& cell : cells) {
    cell.engine.engine_threads = options.engine_threads;
  }
}

/// Maps a cell key onto a filesystem-safe stem: every character outside
/// [A-Za-z0-9._-] becomes '_'. Injective enough in practice (cell keys are
/// unique and their separators map consistently).
inline std::string sanitize_key(const std::string& key) {
  std::string out = key;
  for (char& ch : out) {
    const bool safe = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                      ch == '-';
    if (!safe) {
      ch = '_';
    }
  }
  return out;
}

/// Emits the sweep's JSON records where the options ask (no-op when no
/// --json was given).
inline void emit_json(const HarnessOptions& options,
                      const std::vector<harness::CellResult>& results) {
  if (options.json_path.empty()) {
    return;
  }
  harness::SinkOptions sink;
  sink.include_timing = !options.omit_timing;
  if (options.json_path == "-") {
    harness::write_results_jsonl(std::cout, results, sink);
    return;
  }
  std::ofstream out(options.json_path);
  ensure(static_cast<bool>(out), "cannot open the --json output path");
  harness::write_results_jsonl(out, results, sink);
}

/// Writes each recorded cell timeline into the --trace-out directory as
/// `<key>.trace.json` (Chrome trace-event format, Perfetto-loadable) and
/// `<key>.jsonl` (one event per line). No-op without --trace-out.
inline void emit_traces(const HarnessOptions& options,
                        const std::vector<harness::CellResult>& results) {
  if (options.trace_out.empty()) {
    return;
  }
  const std::filesystem::path dir(options.trace_out);
  std::filesystem::create_directories(dir);
  for (const harness::CellResult& cell : results) {
    if (!cell.trace) {
      continue;
    }
    const std::string stem = sanitize_key(cell.key);
    {
      std::ofstream out(dir / (stem + ".trace.json"));
      ensure(static_cast<bool>(out), "cannot open a --trace-out file");
      // When the cell also carries attribution, its windowed utilization
      // renders as counter tracks next to the recorded spans.
      if (cell.attrib) {
        obs::attrib::Collector& collector = *cell.attrib;
        cell.trace->write_chrome_json(out, [&collector](JsonWriter& json) {
          obs::attrib::emit_chrome_counters(collector, json);
        });
      } else {
        cell.trace->write_chrome_json(out);
      }
    }
    {
      std::ofstream out(dir / (stem + ".jsonl"));
      ensure(static_cast<bool>(out), "cannot open a --trace-out file");
      cell.trace->write_jsonl(out);
    }
  }
}

/// Writes each cell's latency attribution into the --attrib-out directory
/// as `<key>.attrib.json` (full dump: critical-path split, per-link and
/// per-home utilization with windowed series, class latency histograms)
/// and `<key>.attrib.csv` (flat per-resource table). No-op without
/// --attrib-out.
inline void emit_attrib(const HarnessOptions& options,
                        const std::vector<harness::CellResult>& results) {
  if (options.attrib_out.empty()) {
    return;
  }
  const std::filesystem::path dir(options.attrib_out);
  std::filesystem::create_directories(dir);
  for (const harness::CellResult& cell : results) {
    if (!cell.attrib) {
      continue;
    }
    const std::string stem = sanitize_key(cell.key);
    {
      std::ofstream out(dir / (stem + ".attrib.json"));
      ensure(static_cast<bool>(out), "cannot open an --attrib-out file");
      obs::attrib::write_attrib_json(*cell.attrib, out);
    }
    {
      std::ofstream out(dir / (stem + ".attrib.csv"));
      ensure(static_cast<bool>(out), "cannot open an --attrib-out file");
      obs::attrib::write_attrib_csv(*cell.attrib, out);
    }
  }
}

/// Renders an OnlineStats summary as a JSON object field.
inline void emit_stats_field(JsonWriter& json, const std::string& name,
                             const OnlineStats& stats) {
  json.key(name);
  json.begin_object();
  json.field("count", stats.count());
  json.field("mean", stats.mean());
  json.field("stddev", stats.stddev());
  json.field("min", stats.min());
  json.field("max", stats.max());
  json.end_object();
}

/// Writes the --metrics document: sweep telemetry (wall-clock, pool
/// utilization, per-cell phase timing stats) plus every cell's metrics
/// registry. No-op without --metrics.
inline void emit_metrics(const HarnessOptions& options,
                         const harness::SweepRunner& runner,
                         const std::vector<harness::CellResult>& results) {
  if (options.metrics_path.empty()) {
    return;
  }
  const auto write = [&](std::ostream& out) {
    const harness::SweepTelemetry& telemetry = runner.telemetry();
    JsonWriter json(out);
    json.begin_object();
    json.key("sweep");
    json.begin_object();
    json.field("cells_run", telemetry.cells_run);
    json.field("threads_used",
               static_cast<std::uint64_t>(telemetry.threads_used));
    json.field("wall_ms", telemetry.wall_ms);
    json.field("utilization", telemetry.utilization());
    emit_stats_field(json, "cell_ms", telemetry.cell_ms);
    emit_stats_field(json, "trace_build_ms", telemetry.build_ms);
    emit_stats_field(json, "sim_ms", telemetry.sim_ms);
    json.key("thread_busy_ms");
    json.begin_array();
    for (const double busy : telemetry.thread_busy_ms) {
      json.value(busy);
    }
    json.end_array();
    json.end_object();
    json.key("cells");
    json.begin_array();
    std::vector<const harness::CellResult*> sorted;
    sorted.reserve(results.size());
    for (const harness::CellResult& cell : results) {
      sorted.push_back(&cell);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const harness::CellResult* a, const harness::CellResult* b) {
                return a->key < b->key;
              });
    for (const harness::CellResult* cell : sorted) {
      json.begin_object();
      json.field("cell", cell->key);
      obs::MetricsRegistry registry;
      register_metrics(registry, cell->result);
      if (cell->attrib) {
        cell->attrib->register_metrics(registry);
      }
      json.key("metrics");
      json.begin_object();
      registry.emit_fields(json);
      json.end_object();
      if (cell->trace) {
        json.field("trace_events", cell->trace->recorded());
        json.field("trace_dropped", cell->trace->dropped());
      }
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << '\n';
  };
  if (options.metrics_path == "-") {
    write(std::cout);
    return;
  }
  std::ofstream out(options.metrics_path);
  ensure(static_cast<bool>(out), "cannot open the --metrics output path");
  write(out);
}

/// The one-call tail every harness shares: per-cell JSON Lines, per-cell
/// timelines, and the sweep metrics document.
inline void emit_outputs(const HarnessOptions& options,
                         const harness::SweepRunner& runner,
                         const std::vector<harness::CellResult>& results) {
  emit_json(options, results);
  emit_traces(options, results);
  emit_attrib(options, results);
  emit_metrics(options, runner, results);
}

}  // namespace dircc::bench
