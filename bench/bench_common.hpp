// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every harness builds SystemConfigs with the paper's simulation parameters
// (Section 5: 32 processors, one per cluster, 16-byte blocks), runs
// generated application traces through the engine, and prints paper-style
// rows. The bench binaries do not try to match the paper's absolute cycle
// counts — the substrate is a reimplemented simulator — but the normalized
// comparisons (who wins, by what factor) are the reproduction target.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/ensure.hpp"
#include "common/table.hpp"
#include "harness/sink.hpp"
#include "harness/sweep.hpp"
#include "protocol/system.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"

namespace dircc::bench {

inline constexpr int kProcs = 32;
inline constexpr int kBlockSize = 16;
inline constexpr std::uint64_t kSeed = 1990;

/// The paper's four studied schemes at the ~17-bit directory budget
/// (Section 5: three pointers, coarse regions of two).
inline SchemeConfig scheme_full() { return SchemeConfig::full(kProcs); }
inline SchemeConfig scheme_cv() { return SchemeConfig::coarse(kProcs, 3, 2); }
inline SchemeConfig scheme_b() { return SchemeConfig::broadcast(kProcs, 3); }
inline SchemeConfig scheme_nb() {
  return SchemeConfig::no_broadcast(kProcs, 3);
}

/// Non-sparse machine used for the scheme-comparison figures.
inline SystemConfig machine(SchemeConfig scheme,
                            std::uint64_t cache_lines_per_proc = 1024) {
  SystemConfig config;
  config.num_procs = kProcs;
  config.procs_per_cluster = 1;
  config.cache_lines_per_proc = cache_lines_per_proc;
  config.cache_assoc = 4;
  config.block_size = kBlockSize;
  config.scheme = scheme;
  config.seed = kSeed;
  return config;
}

/// Adds a sparse directory of `size_factor` x (total cache lines),
/// distributed over the per-cluster directories.
inline void make_sparse(SystemConfig& config, int size_factor,
                        int associativity = 4,
                        ReplPolicy policy = ReplPolicy::kRandom) {
  const std::uint64_t total_cache_lines =
      config.cache_lines_per_proc *
      static_cast<std::uint64_t>(config.num_procs);
  const auto clusters = static_cast<std::uint64_t>(config.num_clusters());
  std::uint64_t per_home =
      total_cache_lines * static_cast<std::uint64_t>(size_factor) / clusters;
  // Round up to a whole number of sets.
  const auto assoc = static_cast<std::uint64_t>(associativity);
  per_home = ceil_div(per_home, assoc) * assoc;
  config.store.sparse = true;
  config.store.sparse_entries = per_home;
  config.store.sparse_assoc = associativity;
  config.store.policy = policy;
}

/// Runs `trace` on `config` and returns the result.
inline RunResult run_trace(const SystemConfig& config,
                           const ProgramTrace& trace) {
  CoherenceSystem system(config);
  Engine engine(system, trace);
  return engine.run();
}

/// Percentage string relative to a baseline ("100" = equal).
inline std::string pct(double value, double baseline) {
  if (baseline == 0) {
    return "-";
  }
  return fmt(100.0 * value / baseline, 1);
}

inline std::string pct(std::uint64_t value, std::uint64_t baseline) {
  return pct(static_cast<double>(value), static_cast<double>(baseline));
}

/// Options shared by every sweep-harness-backed figure binary.
struct HarnessOptions {
  int threads = 0;        ///< worker threads; 0 = hardware concurrency
  std::string json_path;  ///< empty = no JSON; "-" = stdout
  bool omit_timing = false;
};

/// Parses --threads/--json/--omit-timing (the figure binaries stay
/// argument-free by default: every option has a default).
inline HarnessOptions parse_harness_options(int argc,
                                            const char* const* argv) {
  CliParser cli;
  cli.add_option("threads", "0",
                 "sweep worker threads (0 = hardware concurrency)");
  cli.add_option("json", "",
                 "write per-cell JSON Lines here ('-' = stdout)");
  cli.add_flag("omit-timing",
               "omit per-cell wall-clock from the JSON records");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    std::exit(0);
  }
  HarnessOptions options;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.json_path = cli.get("json");
  options.omit_timing = cli.get_flag("omit-timing");
  return options;
}

/// Emits the sweep's JSON records where the options ask (no-op when no
/// --json was given).
inline void emit_json(const HarnessOptions& options,
                      const std::vector<harness::CellResult>& results) {
  if (options.json_path.empty()) {
    return;
  }
  harness::SinkOptions sink;
  sink.include_timing = !options.omit_timing;
  if (options.json_path == "-") {
    harness::write_results_jsonl(std::cout, results, sink);
    return;
  }
  std::ofstream out(options.json_path);
  ensure(static_cast<bool>(out), "cannot open the --json output path");
  harness::write_results_jsonl(out, results, sink);
}

}  // namespace dircc::bench
