// Baseline comparison: cache-based linked-list directories (Section 3.3)
// versus the memory-based schemes.
//
// The paper argues qualitatively that linked-list directories (a) scale
// their pointer storage with cache size by construction, but (b) serialize
// invalidations ("each write produces a serial string of invalidations"),
// (c) pay messages on every cache replacement (no silent drops) and
// (d) need cache-speed SRAM for the pointers — and that sparse memory-based
// directories reach similar storage without those costs. This harness puts
// numbers on all four points.
#include <iostream>

#include "bench_common.hpp"
#include "model/storage_model.hpp"
#include "sci/sci_system.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  std::cout << "Baseline: SCI-style linked-list directory vs memory-based "
               "schemes (normalized to Dir32 = 100)\n\n";

  for (AppKind app : {AppKind::kLu, AppKind::kMp3d, AppKind::kLocusRoute}) {
    const ProgramTrace trace =
        generate_app(app, kProcs, kBlockSize, kSeed, 0.5);
    std::cout << trace.app_name << ":\n\n";

    TextTable table;
    table.header({"organization", "exec time", "total msgs", "inv+ack",
                  "mean invals/event", "extraneous", "repl msgs note"});

    // Memory-based references: full vector and sparse coarse vector.
    RunResult baseline;
    {
      const RunResult r = run_trace(machine(scheme_full()), trace);
      baseline = r;
      table.row({"Dir32 (full vector)", "100.0", "100.0", "100.0",
                 fmt(r.protocol.inval_distribution.mean(), 2),
                 fmt_count(r.protocol.extraneous_invalidations),
                 "silent shared drops"});
    }
    {
      SystemConfig config = machine(scheme_cv());
      make_sparse(config, 2, 4, ReplPolicy::kRandom);
      const RunResult r = run_trace(config, trace);
      table.row({"sparse(2) Dir3CV2", pct(r.exec_cycles, baseline.exec_cycles),
                 pct(r.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(r.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt(r.protocol.inval_distribution.mean(), 2),
                 fmt_count(r.protocol.extraneous_invalidations),
                 fmt_count(r.protocol.sparse_replacement_invals) +
                     " repl invals"});
    }
    {
      SciConfig config;
      config.num_procs = kProcs;
      config.cache_lines_per_proc = 1024;
      config.cache_assoc = 4;
      config.block_size = kBlockSize;
      SciSystem sci(config);
      Engine engine(sci, trace);
      const RunResult r = engine.run();
      table.row({"SCI linked list", pct(r.exec_cycles, baseline.exec_cycles),
                 pct(r.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(r.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt(r.protocol.inval_distribution.mean(), 2), "0",
                 fmt_count(sci.sci_stats().unlink_operations) + " unlinks, " +
                     fmt_count(sci.sci_stats().serialized_cycles) +
                     " serial cyc"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Storage comparison (the paper's Section 4.2 argument).
  std::cout << "Storage on a 128-processor machine (32 clusters, 16 MB "
               "memory / 256 KB cache per processor):\n\n";
  TextTable storage;
  storage.header({"organization", "where", "total directory bits"});
  {
    MachineModel full;
    full.processors = 128;
    full.procs_per_cluster = 4;
    full.scheme = SchemeConfig::full(32);
    storage.row({"Dir32 non-sparse", "DRAM at memory",
                 fmt_count(full.directory_bits())});
    MachineModel sparse = full;
    sparse.sparsity = 64;
    storage.row({"sparse(64) Dir32", "DRAM at memory",
                 fmt_count(sparse.directory_bits())});
    // SCI: 2 pointers per cache line + head pointer per memory block.
    const std::uint64_t cache_lines = full.total_cache_blocks();
    const std::uint64_t ptr_bits =
        cache_lines * 2ULL *
        static_cast<std::uint64_t>(log2_ceil(32)) ;
    const std::uint64_t head_bits =
        full.total_mem_blocks() * static_cast<std::uint64_t>(log2_ceil(32) + 2);
    storage.row({"SCI linked list",
                 "SRAM in caches + head ptrs in DRAM",
                 fmt_count(ptr_bits) + " + " + fmt_count(head_bits)});
  }
  storage.print(std::cout);
  std::cout << "\nSparse memory-based directories reach linked-list-class "
               "storage while keeping\ninvalidations parallel and "
               "replacements silent — the paper's Section 3.3/4.2\n"
               "argument, quantified.\n";
  return 0;
}
