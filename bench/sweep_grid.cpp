// sweep_grid: general design-space sweep driver over the benchmark grids.
//
// Expands an (apps x schemes x sparse size factors x associativities) grid
// from the command line, runs every cell concurrently on the sweep harness
// (each cell owns its CoherenceSystem + Engine; traces are generated once
// and shared), and emits one JSON record per cell plus an optional summary
// table. Records are stably sorted by cell key and — with --omit-timing —
// byte-identical for any thread count, which is the determinism check CI
// runs.
//
// Examples:
//   sweep_grid --threads 4 --json results.jsonl
//   sweep_grid --apps lu,mp3d --schemes full,cv --size-factors 0,1,2,4
//              --assocs 1,4 --scale 0.25 --table   (one command line)
#include <iostream>
#include <sstream>

#include "bench_common.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

/// Resolves an --apps token against both workload registries: the four
/// paper applications and the three datacenter generators.
struct Workload {
  const char* name;
  harness::TraceSpec trace;
};

Workload parse_workload(const std::string& token, int procs,
                        std::uint64_t clients, std::uint64_t base_seed,
                        double scale) {
  if (token == "lu" || token == "dwf" || token == "mp3d" ||
      token == "locus") {
    const AppKind app = token == "lu"     ? AppKind::kLu
                        : token == "dwf"  ? AppKind::kDwf
                        : token == "mp3d" ? AppKind::kMp3d
                                          : AppKind::kLocusRoute;
    return {app_name(app),
            harness::app_trace(app, procs, kBlockSize, base_seed, scale)};
  }
  if (token == "kv" || token == "queue" || token == "oltp") {
    const DatacenterKind kind = token == "kv"      ? DatacenterKind::kKv
                                : token == "queue" ? DatacenterKind::kQueue
                                                   : DatacenterKind::kOltp;
    return {datacenter_name(kind),
            harness::datacenter_trace(kind, procs, kBlockSize, clients,
                                      base_seed, scale)};
  }
  ensure(false,
         "unknown app (expected lu, dwf, mp3d, locus, kv, queue or oltp)");
  return {"", {}};
}

SchemeConfig parse_scheme(const std::string& name, int clusters) {
  if (name == "full") return SchemeConfig::full(clusters);
  if (name == "cv") return SchemeConfig::coarse(clusters, 3, 2);
  if (name == "b") return SchemeConfig::broadcast(clusters, 3);
  if (name == "nb") return SchemeConfig::no_broadcast(clusters, 3);
  ensure(false, "unknown scheme (expected full, cv, b or nb)");
  return SchemeConfig::full(clusters);
}

ReplPolicy parse_policy(const std::string& name) {
  if (name == "rand") return ReplPolicy::kRandom;
  if (name == "lru") return ReplPolicy::kLru;
  if (name == "lra") return ReplPolicy::kLra;
  ensure(false, "unknown replacement policy (expected rand, lru or lra)");
  return ReplPolicy::kRandom;
}

}  // namespace

int run_main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("apps", "lu,dwf,mp3d,locus",
                 "comma-separated workloads "
                 "(lu,dwf,mp3d,locus,kv,queue,oltp)");
  cli.add_option("clients", "256",
                 "simulated clients for the datacenter workloads "
                 "(kv,queue,oltp)");
  cli.add_option("schemes", "full,cv,b,nb",
                 "comma-separated directory schemes (full,cv,b,nb)");
  cli.add_option("size-factors", "0",
                 "sparse size factors; 0 = non-sparse (e.g. 0,1,2,4)");
  cli.add_option("assocs", "4",
                 "sparse directory associativities (e.g. 1,2,4)");
  cli.add_option("policy", "rand",
                 "sparse replacement policy (rand, lru, lra)");
  cli.add_option("procs", "32", "processors (one per cluster)");
  cli.add_option("cache-lines", "1024", "cache lines per processor");
  cli.add_option("scale", "1.0", "trace problem-size scale (0 < s <= 4)");
  cli.add_option("seed", "1990", "base seed for traces and per-cell seeds");
  cli.add_option("threads", "0",
                 "sweep worker threads (0 = hardware concurrency)");
  cli.add_option("engine-threads", "1",
                 "threads per simulation run (sharded engine; results are "
                 "byte-identical at any value, see docs/PARALLELISM.md)");
  cli.add_option("json", "-",
                 "JSON Lines output path ('-' = stdout, '' = none)");
  cli.add_flag("omit-timing",
               "omit per-cell wall-clock from the JSON records");
  cli.add_flag("progress", "report live sweep progress/ETA on stderr");
  cli.add_option("trace-out", "",
                 "write per-cell Chrome-trace timelines into this directory");
  cli.add_option("metrics", "",
                 "write sweep telemetry + per-cell metrics JSON here "
                 "('-' = stdout)");
  cli.add_option("attrib-out", "",
                 "write per-cell latency attribution (JSON + CSV) into "
                 "this directory (per-hop detail needs --backend queued)");
  cli.add_option("backend", "analytic",
                 "latency backend: 'analytic' (paper-faithful closed-form, "
                 "the default) or 'queued' (per-link/per-home FIFO "
                 "contention)");
  add_hierarchy_options(cli);
  cli.add_flag("table", "also print a human-readable summary table");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  const int procs = static_cast<int>(cli.get_int("procs"));
  const auto cache_lines =
      static_cast<std::uint64_t>(cli.get_int("cache-lines"));
  const double scale = cli.get_double("scale");
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto clients = static_cast<std::uint64_t>(cli.get_int("clients"));
  const ReplPolicy policy = parse_policy(cli.get("policy"));

  // Expand the grid in a fixed nesting order so cell definition order (and
  // with it the JSON sort keys and per-cell seeds) depends only on the
  // spec. Non-sparse cells ignore associativity and are emitted once.
  std::vector<harness::SweepCell> cells;
  for (const std::string& app_token : split_list(cli.get("apps"))) {
    const Workload workload =
        parse_workload(app_token, procs, clients, base_seed, scale);
    for (const std::string& scheme_token : split_list(cli.get("schemes"))) {
      const SchemeConfig scheme = parse_scheme(scheme_token, procs);
      const std::string scheme_name = make_format(scheme)->name();
      for (const std::string& sf_token : split_list(cli.get("size-factors"))) {
        const int size_factor =
            static_cast<int>(parse_int_token("size-factors", sf_token));
        std::vector<std::string> assoc_tokens =
            split_list(cli.get("assocs"));
        if (size_factor == 0) {
          assoc_tokens = {"-"};
        }
        for (const std::string& assoc_token : assoc_tokens) {
          SystemConfig config;
          config.num_procs = procs;
          config.procs_per_cluster = 1;
          config.cache_lines_per_proc = cache_lines;
          config.cache_assoc = 4;
          config.block_size = kBlockSize;
          config.scheme = scheme;
          if (size_factor != 0) {
            make_sparse(config, size_factor,
                        static_cast<int>(parse_int_token("assocs",
                                                         assoc_token)),
                        policy);
          }
          harness::SweepCell cell;
          cell.key = std::string("grid/app=") + workload.name +
                     "/scheme=" + scheme_name +
                     "/size_factor=" + sf_token + "/assoc=" + assoc_token;
          cell.fields = {{"app", workload.name},
                         {"scheme", scheme_name},
                         {"size_factor", sf_token},
                         {"assoc", assoc_token}};
          cell.trace = workload.trace;
          cell.system = config;
          // Deterministic per-cell seeding: a pure function of the base
          // seed and the cell key, independent of thread count and
          // completion order.
          cell.system.seed = harness::cell_seed(base_seed, cell.key);
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  ensure(!cells.empty(), "the grid spec expands to zero cells");

  HarnessOptions options;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.engine_threads =
      std::max(1, static_cast<int>(cli.get_int("engine-threads")));
  options.json_path = cli.get("json");
  options.omit_timing = cli.get_flag("omit-timing");
  options.progress = cli.get_flag("progress");
  options.trace_out = cli.get("trace-out");
  options.metrics_path = cli.get("metrics");
  options.attrib_out = cli.get("attrib-out");
  options.backend = parse_backend(cli.get("backend"));
  read_hierarchy_options(cli, options);
  apply_backend(cells, options);
  apply_hierarchy(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepRunner runner(options.threads);
  const std::vector<harness::CellResult> results =
      runner.run(cells, sweep_options(options));

  if (cli.get_flag("table")) {
    TextTable table;
    table.header({"app", "scheme", "size factor", "assoc", "exec cycles",
                  "total msgs", "inv+ack", "dir replacements"});
    for (const harness::CellResult& cell : results) {
      const RunResult& r = cell.result;
      table.row({cell.fields[0].second, cell.fields[1].second,
                 cell.fields[2].second, cell.fields[3].second,
                 fmt_count(r.exec_cycles),
                 fmt_count(r.protocol.messages.total()),
                 fmt_count(r.protocol.messages.inv_plus_ack()),
                 fmt_count(r.protocol.sparse_replacements)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  emit_outputs(options, runner, results);
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
