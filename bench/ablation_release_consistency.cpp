// Ablation: release-consistency write buffering (the DASH latency-hiding
// mechanism enabled by exact invalidation-count acknowledgements — the
// reason the paper's protocol returns an ack count with every ownership
// reply and the RAC exists).
//
// Stall-on-write makes every write cost its full transaction latency;
// release consistency retires writes into a buffer and only fences at
// releases and barriers. Message traffic is essentially unchanged — the
// win is pure overlap.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  std::cout << "Ablation: release consistency vs stall-on-write "
               "(Dir3CV2, exec time normalized to stall-on-write = 100)\n\n";
  TextTable table;
  table.header({"application", "model", "exec time", "total msgs",
                "buffered writes", "buffer stalls", "fence wait cyc"});
  for (AppKind app : {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d,
                      AppKind::kLocusRoute}) {
    const ProgramTrace trace =
        generate_app(app, kProcs, kBlockSize, kSeed, 0.5);
    RunResult baseline;
    for (const bool rc : {false, true}) {
      CoherenceSystem system(machine(scheme_cv()));
      EngineConfig engine_config;
      engine_config.release_consistency = rc;
      Engine engine(system, trace, engine_config);
      const RunResult result = engine.run();
      if (!rc) {
        baseline = result;
      }
      table.row({trace.app_name, rc ? "release consistency" : "stall on write",
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 fmt_count(result.sync.buffered_writes),
                 fmt_count(result.sync.buffer_stalls),
                 fmt_count(result.sync.fence_wait_cycles)});
    }
    table.rule();
  }
  table.print(std::cout);
  return 0;
}
