// Table 1: sample machine configurations and their directory memory
// overhead (plus the Section 5 sparse-savings example).
//
// Paper values: 64 procs / 16 clusters / Dir16 full         -> 13.3%
//               256 procs / 64 clusters / sparse(4) Dir64   -> ~13%
//               1024 procs / 256 clusters / sparse(4) Dir8CV4 -> ~13%
// and "instead of 33 bits per block we now have 39 bits for every 64
// blocks, a savings factor of 54" for a sparsity-64 full vector.
#include <iostream>

#include "common/table.hpp"
#include "model/storage_model.hpp"

int main() {
  using namespace dircc;

  auto machine = [](int procs, SchemeConfig scheme, int sparsity) {
    MachineModel m;
    m.processors = procs;
    m.procs_per_cluster = 4;
    m.scheme = scheme;
    m.sparsity = sparsity;
    return m;
  };

  const MachineModel rows[] = {
      machine(64, SchemeConfig::full(16), 1),
      machine(256, SchemeConfig::full(64), 4),
      machine(1024, SchemeConfig::coarse(256, 8, 4), 4),
  };

  std::cout << "Table 1: sample machine configurations (16 MB memory and "
               "256 KB cache per processor, 16 B blocks)\n\n";
  TextTable table;
  table.header({"clusters", "procs", "mem (MB)", "cache (MB)", "block (B)",
                "scheme", "entries", "bits/entry", "overhead"});
  for (const MachineModel& m : rows) {
    table.row({std::to_string(m.clusters()), std::to_string(m.processors),
               fmt_count(m.total_mem_bytes() >> 20),
               fmt_count(m.total_cache_bytes() >> 20),
               std::to_string(m.block_size), m.describe_scheme(),
               fmt_count(m.directory_entries()),
               std::to_string(m.bits_per_entry()),
               fmt(m.overhead_fraction() * 100, 1) + "%"});
  }
  table.print(std::cout);

  // Section 5 savings arithmetic: a sparsity-64 full-vector directory on
  // the 32-cluster simulated machine.
  MachineModel example = machine(128, SchemeConfig::full(32), 64);
  std::cout << "\nSection 5 example: full bit vector with sparsity 64 -> "
            << example.bits_per_entry() << " bits per entry ("
            << fmt(example.savings_vs_full_bit_vector(), 1)
            << "x less directory storage than the non-sparse full vector; "
               "paper: 54x)\n";
  return 0;
}
