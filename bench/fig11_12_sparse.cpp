// Figures 11-12: sparse directory performance for LU and DWF as the
// directory size factor varies (entries = factor x total cache lines),
// for the full bit vector, coarse vector and broadcast schemes.
//
// Following Section 6.3, processor caches are scaled down so the data set
// is a few times larger than the total cache space (the paper preserved
// the full-problem data-set/cache ratio the same way); sparse directories
// use associativity 4 and random replacement.
//
// Paper shape: size factors 2 and 4 are indistinguishable from non-sparse;
// size factor 1 costs a few percent, and on LU the broadcast scheme falls
// behind the coarse vector there because replacement re-fetches of the
// widely-shared pivot column re-trigger pointer overflow, and subsequent
// writes/replacements broadcast (Dir_B) instead of invalidating a few
// regions (Dir_CV).
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

void panel(const char* figure, const ProgramTrace& trace,
           std::uint64_t cache_lines_per_proc) {
  const SchemeConfig schemes[] = {scheme_full(), scheme_cv(), scheme_b()};

  std::cout << figure << ": sparse directory performance for "
            << trace.app_name << " (caches scaled to "
            << cache_lines_per_proc << " lines/proc; normalized to the "
            << "non-sparse full bit vector = 100)\n\n";

  const RunResult baseline =
      run_trace(machine(scheme_full(), cache_lines_per_proc), trace);

  TextTable table;
  table.header({"scheme", "size factor", "exec time", "total msgs",
                "inv+ack", "dir replacements", "repl invals"});
  for (const SchemeConfig& scheme : schemes) {
    for (int size_factor : {1, 2, 4, 0}) {  // 0 = non-sparse
      SystemConfig config = machine(scheme, cache_lines_per_proc);
      if (size_factor != 0) {
        make_sparse(config, size_factor, 4, ReplPolicy::kRandom);
      }
      const RunResult result = run_trace(config, trace);
      const std::string sf =
          size_factor == 0 ? "non-sparse" : std::to_string(size_factor);
      table.row({make_format(scheme)->name(), sf,
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.sparse_replacements),
                 fmt_count(result.protocol.sparse_replacement_invals)});
    }
    table.rule();
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  // LU with a 160x160 matrix: 12,800 shared blocks versus 32 x 128 = 4,096
  // cache lines (data set ~3x the cache space).
  LuConfig lu;
  lu.procs = kProcs;
  lu.block_size = kBlockSize;
  lu.n = 160;
  lu.seed = kSeed;
  panel("Figure 11", generate_lu(lu), 48);

  // DWF: ~5,200 shared blocks versus 32 x 96 = 3,072 cache lines.
  DwfConfig dwf;
  dwf.procs = kProcs;
  dwf.block_size = kBlockSize;
  dwf.seed = kSeed;
  panel("Figure 12", generate_dwf(dwf), 96);
  return 0;
}
