// Figures 11-12: sparse directory performance for LU and DWF as the
// directory size factor varies (entries = factor x total cache lines),
// for the full bit vector, coarse vector and broadcast schemes.
//
// Following Section 6.3, processor caches are scaled down so the data set
// is a few times larger than the total cache space (the paper preserved
// the full-problem data-set/cache ratio the same way); sparse directories
// use associativity 4 and random replacement.
//
// Paper shape: size factors 2 and 4 are indistinguishable from non-sparse;
// size factor 1 costs a few percent, and on LU the broadcast scheme falls
// behind the coarse vector there because replacement re-fetches of the
// widely-shared pivot column re-trigger pointer overflow, and subsequent
// writes/replacements broadcast (Dir_B) instead of invalidating a few
// regions (Dir_CV).
//
// Each panel's 12 cells run concurrently on the sweep harness; the
// non-sparse full-bit-vector cell doubles as the normalization baseline.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

constexpr int kSizeFactors[] = {1, 2, 4, 0};  // 0 = non-sparse

std::vector<harness::SweepCell> panel_cells(
    const char* grid, const harness::TraceSpec& trace,
    std::uint64_t cache_lines_per_proc) {
  const SchemeConfig schemes[] = {scheme_full(), scheme_cv(), scheme_b()};
  std::vector<harness::SweepCell> cells;
  for (const SchemeConfig& scheme : schemes) {
    for (int size_factor : kSizeFactors) {
      SystemConfig config = machine(scheme, cache_lines_per_proc);
      if (size_factor != 0) {
        make_sparse(config, size_factor, 4, ReplPolicy::kRandom);
      }
      const std::string scheme_name = make_format(scheme)->name();
      const std::string sf =
          size_factor == 0 ? "non-sparse" : std::to_string(size_factor);
      harness::SweepCell cell;
      cell.key = std::string(grid) + "/scheme=" + scheme_name +
                 "/size_factor=" + sf;
      cell.fields = {{"scheme", scheme_name}, {"size_factor", sf}};
      cell.trace = trace;
      cell.system = config;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

void panel(const char* figure, const char* trace_name,
           std::uint64_t cache_lines_per_proc,
           const std::vector<harness::CellResult>& results) {
  std::cout << figure << ": sparse directory performance for " << trace_name
            << " (caches scaled to " << cache_lines_per_proc
            << " lines/proc; normalized to the "
            << "non-sparse full bit vector = 100)\n\n";

  // The full-scheme/non-sparse cell is row 3 of the first scheme block.
  const RunResult& baseline = results[3].result;

  TextTable table;
  table.header({"scheme", "size factor", "exec time", "total msgs",
                "inv+ack", "dir replacements", "repl invals"});
  std::size_t index = 0;
  for (int scheme = 0; scheme < 3; ++scheme) {
    for (std::size_t sf = 0; sf < std::size(kSizeFactors); ++sf) {
      const harness::CellResult& cell = results[index++];
      const RunResult& result = cell.result;
      table.row({cell.fields[0].second, cell.fields[1].second,
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.sparse_replacements),
                 fmt_count(result.protocol.sparse_replacement_invals)});
    }
    table.rule();
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const HarnessOptions options = parse_harness_options(argc, argv);

  // LU with a 160x160 matrix: 12,800 shared blocks versus 32 x 128 = 4,096
  // cache lines (data set ~3x the cache space).
  LuConfig lu;
  lu.procs = kProcs;
  lu.block_size = kBlockSize;
  lu.n = 160;
  lu.seed = kSeed;

  // DWF: ~5,200 shared blocks versus 32 x 96 = 3,072 cache lines.
  DwfConfig dwf;
  dwf.procs = kProcs;
  dwf.block_size = kBlockSize;
  dwf.seed = kSeed;

  std::vector<harness::SweepCell> cells =
      panel_cells("fig11", harness::lu_trace(lu), 48);
  const std::vector<harness::SweepCell> dwf_cells =
      panel_cells("fig12", harness::dwf_trace(dwf), 96);
  cells.insert(cells.end(), dwf_cells.begin(), dwf_cells.end());
  apply_backend(cells, options);
  apply_hierarchy(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepRunner runner(options.threads);
  const std::vector<harness::CellResult> results =
      runner.run(cells, sweep_options(options));
  const std::size_t per_panel = 12;

  panel("Figure 11", "LU", 48,
        {results.begin(), results.begin() + per_panel});
  panel("Figure 12", "DWF", 96,
        {results.begin() + per_panel, results.end()});

  emit_outputs(options, runner, results);
  return 0;
}
