// datacenter_sweep: datacenter workloads x directory schemes x client
// counts.
//
// Sweeps the three datacenter generators (trace/datacenter.hpp) over the
// paper's directory schemes and a client-count axis, in either of two
// execution modes:
//
//  * --mode materialize — every cell's trace is built once into the shared
//    TraceCache and cells run concurrently on the sweep harness (exactly
//    like the figure binaries).
//  * --mode stream — every cell pulls its events straight from the
//    streaming EventSource with bounded per-processor lookahead, so memory
//    stays flat no matter how many events the run replays. Cells run
//    serially and the binary reports peak RSS; --rss-limit-mb turns that
//    report into a hard failure bound (the CI streaming smoke check).
//
// The two modes replay identical per-processor event streams, so with
// --omit-timing their --json output is byte-identical — that equivalence
// is itself a CI check.
//
// Examples:
//   datacenter_sweep --table
//   datacenter_sweep --workloads kv --clients 4096 --schemes full,cv
//                    --mode stream --rss-limit-mb 512    (one command line)
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "perf/perf.hpp"
#include "trace/datacenter.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

DatacenterKind parse_workload(const std::string& name) {
  if (name == "kv") return DatacenterKind::kKv;
  if (name == "queue") return DatacenterKind::kQueue;
  if (name == "oltp") return DatacenterKind::kOltp;
  ensure(false, "unknown workload (expected kv, queue or oltp)");
  return DatacenterKind::kKv;
}

SchemeConfig parse_scheme(const std::string& name, int clusters) {
  if (name == "full") return SchemeConfig::full(clusters);
  if (name == "cv") return SchemeConfig::coarse(clusters, 3, 2);
  if (name == "b") return SchemeConfig::broadcast(clusters, 3);
  if (name == "nb") return SchemeConfig::no_broadcast(clusters, 3);
  ensure(false, "unknown scheme (expected full, cv, b or nb)");
  return SchemeConfig::full(clusters);
}

/// One grid cell plus the streaming-source recipe the stream mode uses
/// instead of the cell's TraceSpec.
struct DcCell {
  harness::SweepCell cell;
  DatacenterKind kind;
  std::uint64_t clients;
};

}  // namespace

int run_main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("workloads", "kv,queue,oltp",
                 "comma-separated datacenter workloads (kv,queue,oltp)");
  cli.add_option("schemes", "full,cv,b,nb",
                 "comma-separated directory schemes (full,cv,b,nb)");
  cli.add_option("clients", "256",
                 "comma-separated simulated client counts (e.g. 64,256,1024)");
  cli.add_option("procs", "32", "processors (one per cluster)");
  cli.add_option("cache-lines", "1024", "cache lines per processor");
  cli.add_option("scale", "1.0",
                 "per-client operation-count multiplier (event-count axis)");
  cli.add_option("seed", "1990", "base seed for traces and per-cell seeds");
  cli.add_option("mode", "materialize",
                 "execution mode: 'materialize' (cached traces, concurrent "
                 "cells) or 'stream' (bounded-lookahead sources, serial "
                 "cells, flat memory)");
  cli.add_option("rss-limit-mb", "0",
                 "fail (exit 1) if peak RSS exceeds this many MiB "
                 "(0 = no bound; the CI streaming smoke check)");
  add_harness_options(cli);
  cli.add_flag("table", "also print a human-readable summary table");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  const int procs = static_cast<int>(cli.get_int("procs"));
  const auto cache_lines =
      static_cast<std::uint64_t>(cli.get_int("cache-lines"));
  const double scale = cli.get_double("scale");
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto rss_limit_mb =
      static_cast<std::uint64_t>(cli.get_int("rss-limit-mb"));
  const std::string mode = cli.get("mode");
  ensure(mode == "materialize" || mode == "stream",
         "unknown --mode (expected 'materialize' or 'stream')");

  // Fixed nesting order: workload x clients x scheme — cell definition
  // order, JSON sort keys and per-cell seeds depend only on the spec.
  std::vector<DcCell> grid;
  for (const std::string& wl_token : split_list(cli.get("workloads"))) {
    const DatacenterKind kind = parse_workload(wl_token);
    for (const std::string& clients_token : split_list(cli.get("clients"))) {
      const std::int64_t parsed = parse_int_token("clients", clients_token);
      if (parsed < 1) {
        throw CliError("option --clients entries must be positive, got '" +
                       clients_token + "'");
      }
      const auto clients = static_cast<std::uint64_t>(parsed);
      for (const std::string& scheme_token :
           split_list(cli.get("schemes"))) {
        const SchemeConfig scheme = parse_scheme(scheme_token, procs);
        const std::string scheme_name = make_format(scheme)->name();
        SystemConfig config;
        config.num_procs = procs;
        config.procs_per_cluster = 1;
        config.cache_lines_per_proc = cache_lines;
        config.cache_assoc = 4;
        config.block_size = kBlockSize;
        config.scheme = scheme;
        DcCell dc;
        dc.kind = kind;
        dc.clients = clients;
        dc.cell.key = std::string("dc/app=") + datacenter_name(kind) +
                      "/clients=" + clients_token +
                      "/scheme=" + scheme_name;
        dc.cell.fields = {{"app", datacenter_name(kind)},
                          {"clients", clients_token},
                          {"scheme", scheme_name}};
        dc.cell.trace = harness::datacenter_trace(
            kind, procs, kBlockSize, clients, base_seed, scale);
        dc.cell.system = config;
        dc.cell.system.seed = harness::cell_seed(base_seed, dc.cell.key);
        grid.push_back(std::move(dc));
      }
    }
  }
  ensure(!grid.empty(), "the grid spec expands to zero cells");

  HarnessOptions options = read_harness_options(cli);
  std::vector<harness::SweepCell> cells;
  cells.reserve(grid.size());
  for (const DcCell& dc : grid) {
    cells.push_back(dc.cell);
  }
  apply_backend(cells, options);
  apply_hierarchy(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepRunner runner(options.threads);
  std::vector<harness::CellResult> results;
  std::uint64_t events_pulled = 0;
  if (mode == "materialize") {
    results = runner.run(cells, sweep_options(options));
  } else {
    // Streaming mode: serial cells, each pulling from a fresh bounded-
    // lookahead source — never a materialized trace. The per-processor
    // streams are identical to the materialized mode's, so the RunResults
    // (and with --omit-timing the JSON bytes) match exactly.
    if (!options.trace_out.empty() || !options.metrics_path.empty()) {
      std::cerr << "note: --trace-out/--metrics apply to --mode "
                   "materialize only\n";
    }
    results.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const DcCell& dc = grid[i];
      harness::CellResult out;
      out.key = cells[i].key;
      out.fields = cells[i].fields;
      const auto source = make_datacenter_source(
          dc.kind, procs, kBlockSize, dc.clients, base_seed, scale);
      CoherenceSystem system(cells[i].system);
      ShardedEngine engine(system, *source, cells[i].engine);
      out.result = engine.run();
      events_pulled += source->events_pulled();
      results.push_back(std::move(out));
    }
  }

  if (cli.get_flag("table")) {
    TextTable table;
    table.header({"app", "clients", "scheme", "exec cycles", "total msgs",
                  "inv+ack", "lock acquires"});
    for (const harness::CellResult& cell : results) {
      const RunResult& r = cell.result;
      table.row({cell.fields[0].second, cell.fields[1].second,
                 cell.fields[2].second, fmt_count(r.exec_cycles),
                 fmt_count(r.total_messages().total()),
                 fmt_count(r.protocol.messages.inv_plus_ack()),
                 fmt_count(r.sync.lock_acquires)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  if (mode == "materialize") {
    emit_outputs(options, runner, results);
  } else {
    emit_json(options, results);
  }

  // Memory accounting: the whole point of stream mode. Reported in both
  // modes so the flat-vs-O(events) contrast is one flag flip away.
  const std::uint64_t peak_mb = perf::peak_rss_bytes() / (1024 * 1024);
  std::cerr << "peak RSS: " << peak_mb << " MiB";
  if (mode == "stream") {
    std::cerr << " (streamed " << events_pulled << " events)";
  }
  std::cerr << "\n";
  if (rss_limit_mb > 0 && peak_mb > rss_limit_mb) {
    std::cerr << "FAIL: peak RSS " << peak_mb << " MiB exceeds --rss-limit-mb "
              << rss_limit_mb << "\n";
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
