// Figure 2: average invalidation messages sent as a function of the number
// of sharers, for the limited-pointer schemes versus the full bit vector.
//
//   (a) 32 processors: Dir3B, Dir3X, Dir3CV2, Dir32
//   (b) 64 processors: Dir3B, Dir3X, Dir3CV4, Dir64
//
// Paper shape: the full vector is the identity line; Dir3B jumps to ~P-1 as
// soon as 3 pointers overflow; Dir3X is barely better than broadcast; the
// coarse vector climbs gradually (slope ~r extra per new region) and only
// approaches broadcast when most regions are occupied.
#include <iostream>

#include "common/table.hpp"
#include "model/invalidation_model.hpp"

namespace {

void plot(int procs, dircc::SchemeConfig cv) {
  using namespace dircc;
  InvalidationModel model;
  model.trials = 4000;

  const SchemeConfig schemes[] = {
      SchemeConfig::broadcast(procs, 3),
      SchemeConfig::superset(procs, 3),
      cv,
      SchemeConfig::full(procs),
  };

  std::cout << "Figure 2 (" << procs
            << " processors): mean invalidations vs sharers\n\n";
  TextTable table;
  std::vector<std::string> head{"sharers"};
  for (const auto& s : schemes) {
    head.push_back(make_format(s)->name());
  }
  head.push_back(make_format(cv)->name() + " (closed form)");
  table.header(head);
  for (int sharers = 0; sharers < procs; ++sharers) {
    std::vector<std::string> row{std::to_string(sharers)};
    for (const auto& s : schemes) {
      row.push_back(fmt(model.mean_invalidations(s, sharers), 2));
    }
    row.push_back(fmt(expected_invalidations_coarse(
                          procs, cv.num_pointers, cv.region_size, sharers),
                      2));
    table.row(row);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  plot(32, dircc::SchemeConfig::coarse(32, 3, 2));
  plot(64, dircc::SchemeConfig::coarse(64, 3, 4));
  return 0;
}
