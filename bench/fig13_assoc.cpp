// Figure 13: effect of sparse-directory associativity on traffic (LU, full
// bit vector, size factors 1/2/4, associativities 1/2/4, random
// replacement).
//
// Paper shape: for each size factor, associativity 4 is equal to or
// slightly better than 2, which beats direct-mapped by a larger margin —
// conflicting active blocks keep knocking each other out of a
// direct-mapped sparse directory.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  LuConfig lu;
  lu.procs = kProcs;
  lu.block_size = kBlockSize;
  lu.n = 160;
  lu.seed = kSeed;
  const ProgramTrace trace = generate_lu(lu);
  constexpr std::uint64_t kCacheLines = 192;

  const RunResult baseline =
      run_trace(machine(scheme_full(), kCacheLines), trace);

  std::cout << "Figure 13: effect of associativity in the sparse directory "
               "(LU, full bit vector; traffic normalized to non-sparse = "
               "100)\n\n";
  TextTable table;
  table.header({"size factor", "assoc", "total msgs", "inv+ack",
                "dir replacements"});
  for (int size_factor : {1, 2, 4}) {
    for (int assoc : {1, 2, 4}) {
      SystemConfig config = machine(scheme_full(), kCacheLines);
      make_sparse(config, size_factor, assoc, ReplPolicy::kRandom);
      const RunResult result = run_trace(config, trace);
      table.row({std::to_string(size_factor), std::to_string(assoc),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.sparse_replacements)});
    }
    table.rule();
  }
  table.print(std::cout);
  return 0;
}
