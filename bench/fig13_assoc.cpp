// Figure 13: effect of sparse-directory associativity on traffic (LU, full
// bit vector, size factors 1/2/4, associativities 1/2/4, random
// replacement).
//
// Paper shape: for each size factor, associativity 4 is equal to or
// slightly better than 2, which beats direct-mapped by a larger margin —
// conflicting active blocks keep knocking each other out of a
// direct-mapped sparse directory.
//
// The 10 cells (9 sparse + the non-sparse baseline) share one LU trace
// and run concurrently on the sweep harness.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dircc;
  using namespace dircc::bench;

  const HarnessOptions options = parse_harness_options(argc, argv);

  LuConfig lu;
  lu.procs = kProcs;
  lu.block_size = kBlockSize;
  lu.n = 160;
  lu.seed = kSeed;
  constexpr std::uint64_t kCacheLines = 192;
  const harness::TraceSpec trace = harness::lu_trace(lu);

  std::vector<harness::SweepCell> cells;
  {
    harness::SweepCell base;
    base.key = "fig13/size_factor=non-sparse/assoc=-";
    base.fields = {{"size_factor", "non-sparse"}, {"assoc", "-"}};
    base.trace = trace;
    base.system = machine(scheme_full(), kCacheLines);
    cells.push_back(std::move(base));
  }
  for (int size_factor : {1, 2, 4}) {
    for (int assoc : {1, 2, 4}) {
      SystemConfig config = machine(scheme_full(), kCacheLines);
      make_sparse(config, size_factor, assoc, ReplPolicy::kRandom);
      harness::SweepCell cell;
      cell.key = "fig13/size_factor=" + std::to_string(size_factor) +
                 "/assoc=" + std::to_string(assoc);
      cell.fields = {{"size_factor", std::to_string(size_factor)},
                     {"assoc", std::to_string(assoc)}};
      cell.trace = trace;
      cell.system = config;
      cells.push_back(std::move(cell));
    }
  }
  apply_backend(cells, options);
  apply_hierarchy(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepRunner runner(options.threads);
  const std::vector<harness::CellResult> results =
      runner.run(cells, sweep_options(options));
  const RunResult& baseline = results[0].result;

  std::cout << "Figure 13: effect of associativity in the sparse directory "
               "(LU, full bit vector; traffic normalized to non-sparse = "
               "100)\n\n";
  TextTable table;
  table.header({"size factor", "assoc", "total msgs", "inv+ack",
                "dir replacements"});
  for (std::size_t i = 1; i < results.size(); ++i) {
    const harness::CellResult& cell = results[i];
    const RunResult& result = cell.result;
    table.row({cell.fields[0].second, cell.fields[1].second,
               pct(result.protocol.messages.total(),
                   baseline.protocol.messages.total()),
               pct(result.protocol.messages.inv_plus_ack(),
                   baseline.protocol.messages.inv_plus_ack()),
               fmt_count(result.protocol.sparse_replacements)});
    if (i % 3 == 0) {
      table.rule();
    }
  }
  table.print(std::cout);

  emit_outputs(options, runner, results);
  return 0;
}
