// Ablation: the overflow-cache directory (Dir_iOV, Section 7 extension)
// against the paper's schemes.
//
// Dir2OV keeps two exact pointers per block and spills wider sharer sets
// into a machine-wide cache of full bit vectors. While the pool holds, it
// is as precise as Dir_P at a fraction of the per-block storage; when the
// pool thrashes, displaced blocks degrade to broadcast. The pool-size sweep
// shows that knee.
#include <iostream>

#include "bench_common.hpp"
#include "directory/overflow_format.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, kProcs, kBlockSize, kSeed, 1.0);
  const RunResult baseline = run_trace(machine(scheme_full()), trace);

  std::cout << "Ablation: overflow-cache directories on LocusRoute "
               "(normalized to Dir32 = 100)\n\n";
  TextTable table;
  table.header({"scheme", "per-block bits", "pool bits", "total msgs",
                "inv+ack", "extraneous", "pool evictions"});

  auto add_row = [&](SchemeConfig scheme) {
    SystemConfig config = machine(scheme);
    CoherenceSystem system(config);
    Engine engine(system, trace);
    const RunResult result = engine.run();
    std::string pool_bits = "-";
    std::string evictions = "-";
    if (const auto* ov =
            dynamic_cast<const OverflowCacheFormat*>(&system.format())) {
      pool_bits = fmt_count(ov->pool_state_bits());
      evictions = fmt_count(ov->pool_evictions());
    }
    table.row({system.format().name(),
               std::to_string(system.format().state_bits()), pool_bits,
               pct(result.protocol.messages.total(),
                   baseline.protocol.messages.total()),
               pct(result.protocol.messages.inv_plus_ack(),
                   baseline.protocol.messages.inv_plus_ack()),
               fmt_count(result.protocol.extraneous_invalidations),
               evictions});
  };

  add_row(scheme_full());
  add_row(scheme_cv());
  add_row(scheme_b());
  for (int pool : {16, 64, 256, 1024, 4096}) {
    add_row(SchemeConfig::overflow(kProcs, 2, pool));
  }
  table.print(std::cout);
  std::cout << "\nThe pool sweep: with enough wide entries Dir2OV matches "
               "the full vector's\ntraffic; a starved pool degrades "
               "displaced blocks to broadcast.\n";
  return 0;
}
