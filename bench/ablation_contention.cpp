// Ablation: network and home-directory occupancy contention.
//
// The paper's runs use one processor per cluster, so "the local cluster
// bus is thus underutilized" and message-count differences barely move
// execution time; Section 6.2 predicts that on a busier machine "the
// performance degradation due to an increased number of messages [will]
// be larger than shown here". This harness re-runs the Figure 10
// comparison under both latency backends: the default analytic backend
// charges the paper's closed-form per-transaction costs, while the queued
// backend walks each transaction's hop DAG through per-mesh-link and
// per-home-controller FIFOs, so the broadcast scheme's invalidation
// bursts now cost time, not just messages.
//
// Two micro-sweeps then isolate the queued backend's defining property:
// end-to-end transaction latency is monotonically non-decreasing as the
// invalidation fan-out grows (a write invalidating N sharers) and as
// sparse-directory pressure grows (a reclamation invalidating the
// victim's N sharers). The binary exits nonzero if either sweep is
// non-monotone.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

SystemConfig micro_config() {
  SystemConfig config = machine(scheme_full(), 64);
  config.backend = BackendKind::kQueued;
  return config;
}

/// Latency of a write that must invalidate `sharers` remote caches,
/// issued long after the warm-up reads so no residual queueing remains —
/// the measured wait is the write's own fan-out serializing at home.
Cycle write_latency(int sharers, BackendKind backend) {
  SystemConfig config = micro_config();
  config.backend = backend;
  CoherenceSystem sys(config);
  Cycle t = 0;
  for (int p = 0; p < sharers; ++p) {
    sys.access(static_cast<ProcId>(2 + p), 0, false, t);
    t += 100;
  }
  return sys.access(1, 0, true, 1'000'000);
}

/// Latency of a read whose sparse-directory miss must reclaim a victim
/// entry with `sharers` cached copies (blocks 0, 32 and 64 all map to
/// home 0's single two-way set; LRU picks the widely shared block 0).
Cycle reclaim_latency(int sharers, BackendKind backend) {
  SystemConfig config = micro_config();
  config.backend = backend;
  config.store.sparse = true;
  config.store.sparse_entries = 2;
  config.store.sparse_assoc = 2;
  config.store.policy = ReplPolicy::kLru;
  CoherenceSystem sys(config);
  Cycle t = 0;
  for (int p = 0; p < sharers; ++p) {
    sys.access(static_cast<ProcId>(2 + p), 0, false, t);
    t += 100;
  }
  sys.access(1, 32, false, 500'000);
  return sys.access(1, 64, false, 1'000'000);
}

/// Prints one monotonicity sweep and returns whether it is non-decreasing.
bool sweep(const char* title, Cycle (*measure)(int, BackendKind)) {
  std::cout << title << "\n\n";
  TextTable table;
  table.header({"sharers", "analytic", "queued", "queued - analytic"});
  bool monotone = true;
  Cycle previous = 0;
  for (const int sharers : {0, 1, 2, 4, 8, 16, 30}) {
    const Cycle analytic = measure(sharers, BackendKind::kAnalytic);
    const Cycle queued = measure(sharers, BackendKind::kQueued);
    monotone = monotone && queued >= previous;
    previous = queued;
    table.row({std::to_string(sharers), fmt_count(analytic),
               fmt_count(queued), fmt_count(queued - analytic)});
  }
  table.print(std::cout);
  std::cout << (monotone ? "monotone: yes" : "monotone: NO — REGRESSION")
            << "\n\n";
  return monotone;
}

}  // namespace

int main() {
  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, kProcs, kBlockSize, kSeed, 1.0);

  std::cout << "Ablation: contention backends, LocusRoute "
               "(exec time normalized to Dir32 within each backend)\n\n";
  TextTable table;
  table.header({"backend", "scheme", "exec time", "total msgs", "inv+ack",
                "link wait", "home wait"});
  for (const BackendKind backend :
       {BackendKind::kAnalytic, BackendKind::kQueued}) {
    RunResult baseline;
    for (const SchemeConfig& scheme :
         {scheme_full(), scheme_cv(), scheme_b(), scheme_nb()}) {
      SystemConfig config = machine(scheme);
      config.backend = backend;
      const RunResult result = run_trace(config, trace);
      if (scheme.kind == SchemeKind::kFullBitVector) {
        baseline = result;
      }
      table.row({backend_kind_name(backend), make_format(scheme)->name(),
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.link_wait_cycles),
                 fmt_count(result.protocol.home_wait_cycles)});
    }
    table.rule();
  }
  table.print(std::cout);
  std::cout << "\nUnder the analytic backend the schemes' execution times "
               "are nearly identical\ndespite very different message "
               "counts; with links and home controllers modeled\nas FIFOs, "
               "the broadcast scheme's message inflation surfaces as time "
               "— the\npaper's Section 6.2 expectation.\n\n";

  const bool fanout_ok = sweep(
      "Invalidation fan-out: one write invalidating N sharers "
      "(transaction latency)",
      write_latency);
  const bool reclaim_ok = sweep(
      "Sparse pressure: one read reclaiming a victim with N sharers "
      "(transaction latency)",
      reclaim_latency);
  return fanout_ok && reclaim_ok ? 0 : 1;
}
