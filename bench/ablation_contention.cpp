// Ablation: home-directory occupancy contention.
//
// The paper's runs use one processor per cluster, so "the local cluster
// bus is thus underutilized" and message-count differences barely move
// execution time; Section 6.2 predicts that on a busier machine "the
// performance degradation due to an increased number of messages [will]
// be larger than shown here". This harness turns on a directory-occupancy
// queueing model and re-runs the Figure 10 comparison: the broadcast
// scheme's extra invalidation bursts now cost time, not just messages.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, kProcs, kBlockSize, kSeed, 1.0);

  std::cout << "Ablation: directory-occupancy contention, LocusRoute "
               "(exec time normalized to Dir32 within each model)\n\n";
  TextTable table;
  table.header({"contention", "scheme", "exec time", "total msgs",
                "inv+ack", "queue wait cycles"});
  for (const bool contention : {false, true}) {
    RunResult baseline;
    for (const SchemeConfig& scheme :
         {scheme_full(), scheme_cv(), scheme_b(), scheme_nb()}) {
      SystemConfig config = machine(scheme);
      config.model_contention = contention;
      const RunResult result = run_trace(config, trace);
      if (scheme.kind == SchemeKind::kFullBitVector) {
        baseline = result;
      }
      table.row({contention ? "on" : "off", make_format(scheme)->name(),
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.contention_wait_cycles)});
    }
    table.rule();
  }
  table.print(std::cout);
  std::cout << "\nWithout contention the schemes' execution times are "
               "nearly identical despite\nvery different message counts; "
               "with the home controllers modeled as queues,\nthe "
               "broadcast scheme's message inflation surfaces as time — "
               "the paper's\nSection 6.2 expectation.\n";
  return 0;
}
