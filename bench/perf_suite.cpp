// Simulator-throughput measurement suite (see docs/PERFORMANCE.md).
//
// Runs the pinned perf matrix (src/perf) and emits a schema-versioned
// BENCH_PERF.json plus a human-readable summary table. Unlike every other
// bench binary this one measures the *simulator*, not the simulated
// machine: accesses/sec and simulated-cycles/sec of the build and simulate
// phases, with p50/p95 over --reps repetitions per cell.
//
//   perf_suite --matrix fig07_10 --reps 5 --out BENCH_PERF.json
//   perf_suite --matrix fig07_10 --baseline old/BENCH_PERF.json
//   perf_suite --matrix smoke --obs-overhead
//
// --baseline embeds a before/after speedup table (per cell and aggregate)
// computed against a previously emitted document.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/ensure.hpp"
#include "perf/perf.hpp"

int run_main(int argc, char** argv) {
  using namespace dircc;
  using namespace dircc::perf;

  CliParser cli;
  cli.add_option("matrix", "full",
                 "cell matrix: 'fig07_10' (the Figure 7-10 grid), 'full' "
                 "(x backend x store), 'smoke' (reduced CI grid) or "
                 "'streaming' (datacenter workloads through bounded-"
                 "lookahead sources, with per-cell peak RSS)");
  cli.add_option("reps", "3", "simulate-phase repetitions per cell");
  cli.add_option("scale", "1.0", "trace-size multiplier");
  cli.add_option("seed", "1990", "trace-generator seed");
  cli.add_option("out", "BENCH_PERF.json",
                 "write the perf document here ('-' = stdout)");
  cli.add_option("baseline", "",
                 "previously emitted BENCH_PERF.json to compare against");
  cli.add_flag("list", "print the matrix cell keys and exit");
  cli.add_flag("progress", "report per-cell progress on stderr");
  cli.add_flag("obs-overhead",
               "re-run every cell with the latency-attribution collector "
               "attached and record the obs cost in the document");
  cli.add_option("threads-axis", "1",
                 "comma-separated engine-thread counts to measure each cell "
                 "at (e.g. 1,2,4); counts beyond 1 re-time the cell under "
                 "the sharded engine and add per-cell and aggregate speedup "
                 "tables to the document (results are byte-identical across "
                 "the axis, see docs/PARALLELISM.md)");

  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  MatrixOptions options;
  options.name = cli.get("matrix");
  options.scale = cli.get_double("scale");
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int reps = static_cast<int>(cli.get_int("reps"));
  if (reps <= 0) {
    std::cerr << "--reps must be positive\n";
    return 2;
  }
  options.threads_axis.clear();
  {
    std::istringstream axis(cli.get("threads-axis"));
    std::string token;
    while (std::getline(axis, token, ',')) {
      if (token.empty()) {
        continue;
      }
      int threads = 0;
      try {
        threads = std::stoi(token);
      } catch (...) {
        threads = 0;
      }
      if (threads <= 0) {
        std::cerr << "--threads-axis expects positive integers, got '"
                  << token << "'\n";
        return 2;
      }
      options.threads_axis.push_back(threads);
    }
  }
  if (options.threads_axis.empty()) {
    options.threads_axis.push_back(1);
  }

  const std::vector<PerfCell> cells = perf_matrix(options);
  if (cli.get_flag("list")) {
    for (const PerfCell& cell : cells) {
      std::cout << cell.key << "\n";
    }
    return 0;
  }

  Baseline baseline;
  bool have_baseline = false;
  if (const std::string path = cli.get("baseline"); !path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open --baseline '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const auto loaded = load_baseline(text.str(), path, &error);
    if (!loaded) {
      std::cerr << "--baseline: " << error << "\n";
      return 2;
    }
    baseline = *loaded;
    have_baseline = true;
  }

  PerfProgress progress;
  if (cli.get_flag("progress")) {
    progress = [](std::size_t done, std::size_t total,
                  const std::string& key) {
      if (key.empty()) {
        std::cerr << "perf: " << done << "/" << total << " cells done\n";
      } else {
        std::cerr << "perf: [" << done + 1 << "/" << total << "] " << key
                  << "\n";
      }
    };
  }

  const PerfReport report = run_matrix(cells, options, reps, progress,
                                       cli.get_flag("obs-overhead"));

  const std::string out_path = cli.get("out");
  if (out_path == "-") {
    write_report(std::cout, report, have_baseline ? &baseline : nullptr);
  } else {
    std::ofstream out(out_path);
    ensure(static_cast<bool>(out), "cannot open the --out path");
    write_report(out, report, have_baseline ? &baseline : nullptr);
    print_summary(std::cout, report, have_baseline ? &baseline : nullptr);
    std::cout << "\nwrote " << out_path << "\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
