// Exhaustive guarded-action model checker for tiny configurations
// (docs/MODELCHECK.md).
//
// Sweeps a scheme x store x chips x fault grid; each cell runs the
// explicit-state BFS explorer (src/check/model) over every interleaving of
// processor accesses, auditing every reached state with the invariant
// oracle plus the guard-totality (deadlock-freedom) and path cross-checks.
// `--faults none` cells must explore to exhaustion with zero violations;
// fault cells must produce a counterexample whose <= 50-event trace
// reproduces the violation under the plain engine (and is replayable with
// `fuzz_coherence --replay`, command printed per counterexample). Cells
// where the configured fault has no reachable site are skipped with the
// reason printed.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "check/model/explorer.hpp"
#include "check/model/state_codec.hpp"
#include "common/cli.hpp"
#include "common/ensure.hpp"
#include "common/table.hpp"
#include "trace/trace_file.hpp"

namespace {

using namespace dircc;
using namespace dircc::check::model;

constexpr std::uint64_t kMaxCounterexampleEvents = 50;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

check::FaultKind fault_by_name(const std::string& name) {
  if (name == "none") {
    return check::FaultKind::kNone;
  }
  if (name == "sharer") {
    return check::FaultKind::kForgetSharer;
  }
  if (name == "inval") {
    return check::FaultKind::kSkipInvalidation;
  }
  if (name == "writeback") {
    return check::FaultKind::kDropVictimWriteback;
  }
  if (name == "chip-sharer") {
    return check::FaultKind::kForgetChipSharer;
  }
  std::cerr << "unknown fault '" << name
            << "' (none, sharer, inval, writeback, chip-sharer)\n";
  std::exit(2);
}

struct Flags {
  std::vector<std::string> schemes;
  std::vector<std::string> stores;
  std::vector<int> chips;
  std::vector<std::string> faults;
  std::uint64_t fault_trigger = 1;
  int procs = 2;
  int blocks = 1;
  BlockLayout layout = BlockLayout::kSpread;
  std::uint64_t sparse_entries = 1;
  std::uint64_t cache_lines = 8;
  std::uint64_t max_states = 1u << 20;
  int max_depth = 64;
  std::string dump_dir;
  bool require_clean = false;
  bool require_caught = false;
};

Flags parse_flags(int argc, const char* const* argv) {
  CliParser cli;
  cli.add_option("schemes", "full,cv,b,nb",
                 "directory schemes to check (full,cv,b,nb)");
  cli.add_option("stores", "dense,sparse",
                 "home directory store organizations (dense,sparse)");
  cli.add_option("chips", "1",
                 "machine shapes: 1 = flat, 2 = two-level hierarchy "
                 "(comma list)");
  cli.add_option("faults", "none",
                 "seeded protocol mutations to hunt exhaustively "
                 "(none,sharer,inval,writeback,chip-sharer)");
  cli.add_option("fault-trigger", "1",
                 "fire the seeded fault on this corrupting opportunity");
  cli.add_option("procs", "2", "processors, one per cluster (2..8)");
  cli.add_option("blocks", "1", "model blocks the actions range over (1..4)");
  cli.add_option("layout", "spread",
                 "block placement: 'spread' (one home each) or 'same-home' "
                 "(all at cluster 0; forces sparse victimization)");
  cli.add_option("sparse-entries", "1",
                 "flat sparse entries per home cluster (direct-mapped)");
  cli.add_option("cache-lines", "8", "cache lines per processor (2-way)");
  cli.add_option("max-states", "1048576",
                 "abort a cell past this many distinct states");
  cli.add_option("max-depth", "64", "abort a cell past this BFS depth");
  cli.add_option("dump", "",
                 "write counterexample traces + reports into this directory");
  cli.add_flag("require-clean",
               "exit nonzero unless every no-fault cell explores to "
               "exhaustion with zero violations and full action coverage "
               "(CI)");
  cli.add_flag("require-caught",
               "exit nonzero unless every fault cell produces a "
               "reproducing counterexample (CI)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    std::exit(2);
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    std::exit(0);
  }
  Flags flags;
  flags.schemes = split_list(cli.get("schemes"));
  flags.stores = split_list(cli.get("stores"));
  for (const std::string& item : split_list(cli.get("chips"))) {
    flags.chips.push_back(std::stoi(item));
  }
  flags.faults = split_list(cli.get("faults"));
  flags.fault_trigger =
      static_cast<std::uint64_t>(cli.get_int("fault-trigger"));
  flags.procs = static_cast<int>(cli.get_int("procs"));
  flags.blocks = static_cast<int>(cli.get_int("blocks"));
  const std::string layout = cli.get("layout");
  if (layout == "spread") {
    flags.layout = BlockLayout::kSpread;
  } else if (layout == "same-home") {
    flags.layout = BlockLayout::kSameHome;
  } else {
    std::cerr << "unknown layout '" << layout << "' (spread, same-home)\n";
    std::exit(2);
  }
  flags.sparse_entries =
      static_cast<std::uint64_t>(cli.get_int("sparse-entries"));
  flags.cache_lines = static_cast<std::uint64_t>(cli.get_int("cache-lines"));
  flags.max_states = static_cast<std::uint64_t>(cli.get_int("max-states"));
  flags.max_depth = static_cast<int>(cli.get_int("max-depth"));
  flags.dump_dir = cli.get("dump");
  flags.require_clean = cli.get_flag("require-clean");
  flags.require_caught = cli.get_flag("require-caught");
  ensure(!flags.schemes.empty() && !flags.stores.empty() &&
             !flags.chips.empty() && !flags.faults.empty(),
         "model-check grid must be non-empty");
  return flags;
}

ModelConfig cell_config(const Flags& flags, const std::string& scheme,
                        const std::string& store, int chips,
                        const std::string& fault) {
  ModelConfig config;
  config.procs = flags.procs;
  config.blocks = flags.blocks;
  config.layout = flags.layout;
  config.scheme = scheme;
  if (store == "sparse") {
    config.sparse = true;
  } else if (store != "dense") {
    std::cerr << "unknown store '" << store << "' (dense, sparse)\n";
    std::exit(2);
  }
  config.chips = chips;
  config.sparse_entries = flags.sparse_entries;
  config.cache_lines = flags.cache_lines;
  config.fault.kind = fault_by_name(fault);
  config.fault.trigger = flags.fault_trigger;
  config.max_states = flags.max_states;
  config.max_depth = flags.max_depth;
  return config;
}

std::string sanitize_key(const std::string& key) {
  std::string out = key;
  for (char& ch : out) {
    const bool safe = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                      ch == '-';
    if (!safe) {
      ch = '_';
    }
  }
  return out;
}

void dump_counterexample(const Flags& flags, const ModelConfig& config,
                         const Counterexample& ce, const std::string& key) {
  const std::filesystem::path dir(flags.dump_dir);
  std::filesystem::create_directories(dir);
  const std::string stem = sanitize_key(key);
  const std::string trace_path = (dir / (stem + ".trace")).string();
  ensure(save_trace(trace_path, ce.trace),
         "cannot write the counterexample trace");
  std::ofstream out(dir / (stem + ".report.txt"));
  ensure(static_cast<bool>(out), "cannot write the counterexample report");
  out << "cell: " << key << "\n"
      << "failure: " << failure_kind_name(ce.kind) << "\n"
      << "path (" << ce.path.size() << " steps):\n";
  for (const ModelAction& a : ce.path) {
    out << "  p" << a.proc << " " << (a.is_write ? "write" : "read")
        << " block " << model_block(config, a.block_index) << "\n";
  }
  out << "final state:\n" << ce.final_state
      << "detail:\n" << ce.detail << "\n"
      << "trace: " << trace_path << " (" << ce.trace.total_events()
      << " events)\n"
      << "replay: " << replay_command(config, trace_path) << "\n";
  std::cout << "  dumped " << trace_path << " (+report)\n";
}

/// Re-verifies a counterexample end to end: its emitted trace, run through
/// the plain engine with the oracle attached (exactly what
/// `fuzz_coherence --replay` does), must reproduce a violation.
bool counterexample_reproduces(const ModelConfig& config,
                               const Counterexample& ce) {
  const check::CheckedRun run =
      check::run_checked(build_system(config), EngineConfig{}, ce.trace);
  return run.report.failed();
}

}  // namespace

int run_main(int argc, char** argv) {
  const Flags flags = parse_flags(argc, argv);
  if (!check::compiled()) {
    std::cout << "model_check: checking compiled out (DIRCC_CHECK=0); "
                 "nothing verified\n";
    return flags.require_clean || flags.require_caught ? 1 : 0;
  }

  TextTable table;
  table.header({"cell", "states", "transitions", "depth", "coverage",
                "result"});
  int failures = 0;
  int skipped = 0;
  bool any_fault_cell_ran = false;
  std::vector<std::string> notes;

  for (const std::string& scheme : flags.schemes) {
    for (const std::string& store : flags.stores) {
      for (const int chips : flags.chips) {
        for (const std::string& fault : flags.faults) {
          const ModelConfig config =
              cell_config(flags, scheme, store, chips, fault);
          const std::string key = cell_name(config);
          const std::string invalid = validate(config);
          if (!invalid.empty()) {
            std::cerr << "invalid configuration (" << key << "): " << invalid
                      << "\n";
            return 2;
          }
          const bool fault_cell =
              config.fault.kind != check::FaultKind::kNone;
          if (fault_cell) {
            const std::string infeasible = fault_feasible(config);
            if (!infeasible.empty()) {
              std::cout << "SKIP " << key << ": " << infeasible << "\n";
              ++skipped;
              continue;
            }
            any_fault_cell_ran = true;
          }

          const ExploreResult result = explore(config);
          std::ostringstream coverage;
          int covered = 0;
          for (const std::uint64_t n : result.kind_transitions) {
            covered += n > 0 ? 1 : 0;
          }
          coverage << covered << "/" << kNumActionKinds;

          std::string verdict;
          bool cell_failed = false;
          if (result.counterexample.has_value()) {
            const Counterexample& ce = *result.counterexample;
            const bool caught = fault_cell &&
                                ce.kind == FailureKind::kInvariant &&
                                ce.faults_injected > 0;
            const bool reproduces = counterexample_reproduces(config, ce);
            const bool short_enough =
                ce.trace.total_events() <= kMaxCounterexampleEvents;
            if (caught && reproduces && short_enough) {
              verdict = "caught @" + std::to_string(ce.path.size()) +
                        " steps (" + std::to_string(ce.trace.total_events()) +
                        "-event trace replays)";
            } else {
              cell_failed = true;
              verdict = std::string(failure_kind_name(ce.kind)) +
                        (reproduces ? "" : " (trace does NOT reproduce)") +
                        (short_enough ? "" : " (trace > 50 events)");
              notes.push_back(key + ": " + failure_kind_name(ce.kind) +
                              "\n" + ce.detail);
            }
            if (!flags.dump_dir.empty()) {
              dump_counterexample(flags, config, ce, key);
            }
          } else if (fault_cell) {
            // Feasibility said the fault has a reachable site, yet the
            // exhaustive exploration never saw it fire.
            cell_failed = true;
            verdict = result.exhausted ? "fault NEVER FIRED (exhausted)"
                                       : "fault never fired (capped)";
          } else if (!result.exhausted) {
            verdict = result.hit_state_cap ? "STATE CAP" : "DEPTH CAP";
            if (flags.require_clean) {
              cell_failed = true;
            }
          } else {
            verdict = "clean (exhausted)";
            if (flags.require_clean && !result.all_kinds_covered()) {
              cell_failed = true;
              verdict += " but " + coverage.str() + " action kinds";
            }
          }
          if (cell_failed) {
            ++failures;
            verdict = "FAIL: " + verdict;
          }
          table.row({key, fmt_count(result.states),
                     fmt_count(result.transitions),
                     std::to_string(result.depth), coverage.str(), verdict});
        }
      }
    }
  }

  std::cout << "model_check: " << flags.schemes.size() << " schemes x "
            << flags.stores.size() << " stores x " << flags.chips.size()
            << " chip shapes x " << flags.faults.size() << " faults, "
            << flags.procs << " procs / " << flags.blocks << " block(s)\n\n";
  table.print(std::cout);
  for (const std::string& note : notes) {
    std::cout << "\n" << note;
  }
  if (skipped > 0) {
    std::cout << "\n" << skipped << " cell(s) skipped (fault infeasible "
              << "in that configuration)\n";
  }

  if (flags.require_caught && !any_fault_cell_ran) {
    std::cerr << "FAIL: --require-caught but every fault cell was skipped\n";
    return 1;
  }
  if (failures > 0) {
    std::cerr << "\nFAIL: " << failures << " cell(s) failed\n";
    return 1;
  }
  if (flags.require_clean || flags.require_caught) {
    std::cout << "\nall cells passed\n";
  }
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
