// Ablation: grouped directory entries (Section 7: "make multiple memory
// blocks share one wide entry").
//
// A group of g consecutive home-local blocks shares one wide sharer field
// (the union of each member's sharers) while keeping per-block state and
// dirty owners. Storage shrinks by nearly 1/g; the price is extraneous
// invalidations whenever one block of a group is written while siblings
// are shared by other clusters — spatial locality decides the damage.
#include <iostream>

#include "bench_common.hpp"
#include "model/storage_model.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  std::cout << "Ablation: grouped wide entries (full bit vector, "
               "normalized to group size 1 = 100)\n\n";

  for (AppKind app : {AppKind::kLocusRoute, AppKind::kMp3d}) {
    const ProgramTrace trace =
        generate_app(app, kProcs, kBlockSize, kSeed, 0.5);
    std::cout << trace.app_name << ":\n\n";
    TextTable table;
    table.header({"group", "bits/block", "exec time", "total msgs",
                  "inv+ack", "extraneous"});
    RunResult baseline;
    for (int group : {1, 2, 4, 8}) {
      SystemConfig config = machine(scheme_full());
      config.blocks_per_group = group;
      const RunResult result = run_trace(config, trace);
      if (group == 1) {
        baseline = result;
      }
      MachineModel model;
      model.processors = kProcs * 4;
      model.procs_per_cluster = 4;
      model.scheme = SchemeConfig::full(kProcs);
      model.blocks_per_entry = group;
      const double bits_per_block =
          static_cast<double>(model.bits_per_entry()) / group;
      table.row({std::to_string(group), fmt(bits_per_block, 1),
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.extraneous_invalidations)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Grouping divides directory entries by the group size; the "
               "extraneous\ninvalidation growth shows how much union "
               "imprecision each workload's\nspatial sharing tolerates.\n";
  return 0;
}
