// Figures 3-6: invalidation distributions for LocusRoute under Dir32 (full
// bit vector), Dir3NB, Dir3B and Dir3CV2.
//
// Paper shape (Section 6.1):
//  * Dir32    — the intrinsic distribution: most events cause 0-2
//               invalidations, a small tail reaches many sharers
//               (0.26M events, 0.98 invals/event).
//  * Dir3NB   — reads displace sharers, so there are many *more* events,
//               all of size <= 3 (0.42M events, 0.88 invals/event but a
//               larger total).
//  * Dir3B    — small events match the full vector; everything that needed
//               > 3 invalidations becomes a ~30-wide broadcast spike at the
//               right edge (3.9 invals/event).
//  * Dir3CV2  — the tail shifts to even region counts instead of exploding
//               to broadcast; odd-looking peaks come from the region
//               granularity (1.41 invals/event).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  const ProgramTrace trace =
      generate_app(AppKind::kLocusRoute, kProcs, kBlockSize, kSeed, 1.0);

  struct Panel {
    const char* figure;
    SchemeConfig scheme;
  };
  const Panel panels[] = {
      {"Figure 3", scheme_full()},
      {"Figure 4", scheme_nb()},
      {"Figure 5", scheme_b()},
      {"Figure 6", scheme_cv()},
  };

  for (const Panel& panel : panels) {
    const RunResult result = run_trace(machine(panel.scheme), trace);
    const Histogram& dist = result.protocol.inval_distribution;
    std::cout << panel.figure << ": invalidation distribution, LocusRoute, "
              << make_format(panel.scheme)->name() << "\n";
    std::cout << "  invalidation events: " << fmt_count(dist.events())
              << "   total invalidations: " << fmt_count(dist.total())
              << "   mean per event: " << fmt(dist.mean(), 2) << "\n";
    TextTable table;
    table.header({"invals", "events", "% of events", "bar"});
    for (std::uint64_t v = 0; v <= dist.max_value(); ++v) {
      const double frac = dist.fraction_at(v);
      if (dist.count_at(v) == 0 && frac == 0.0) {
        continue;
      }
      const int bar_len = static_cast<int>(frac * 60 + 0.5);
      table.row({std::to_string(v), fmt_count(dist.count_at(v)),
                 fmt(frac * 100, 2), std::string(bar_len, '#')});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
