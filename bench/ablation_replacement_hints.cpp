// Ablation: replacement hints (Section 7 trade-off space).
//
// Silent shared-line replacement leaves stale sharers in the directory;
// every later write pays extraneous invalidations, and a sparse directory
// keeps dead entries pinned. A replacement hint prunes the sharer at the
// cost of one message per displaced shared line. This harness quantifies
// both sides on LocusRoute (stale-sharer-heavy) and on the sparse-LU
// configuration of Figure 11.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

void panel(const char* title, const ProgramTrace& trace, SystemConfig base) {
  std::cout << title << "\n\n";
  TextTable table;
  table.header({"hints", "exec time", "total msgs", "inv+ack", "extraneous",
                "hints sent", "dir replacements"});
  RunResult baseline;
  for (const bool hints : {false, true}) {
    SystemConfig config = base;
    config.replacement_hints = hints;
    const RunResult result = run_trace(config, trace);
    if (!hints) {
      baseline = result;
    }
    table.row({hints ? "on" : "off",
               pct(result.exec_cycles, baseline.exec_cycles),
               pct(result.protocol.messages.total(),
                   baseline.protocol.messages.total()),
               pct(result.protocol.messages.inv_plus_ack(),
                   baseline.protocol.messages.inv_plus_ack()),
               fmt_count(result.protocol.extraneous_invalidations),
               fmt_count(result.protocol.replacement_hints_sent),
               fmt_count(result.protocol.sparse_replacements)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Ablation: replacement hints (normalized to hints off = "
               "100)\n\n";

  // LocusRoute with small caches: lots of silently displaced shared grid
  // blocks -> stale sharers -> extraneous invalidations on later writes.
  {
    const ProgramTrace trace =
        generate_app(AppKind::kLocusRoute, kProcs, kBlockSize, kSeed, 1.0);
    panel("LocusRoute, 128-line caches, full bit vector, non-sparse",
          trace, machine(scheme_full(), 128));
  }

  // The Figure 11 sparse-LU setup: hints free dead entries, cutting
  // directory replacements.
  {
    LuConfig lu;
    lu.procs = kProcs;
    lu.block_size = kBlockSize;
    lu.n = 160;
    lu.seed = kSeed;
    SystemConfig config = machine(scheme_full(), 48);
    make_sparse(config, 1, 4, ReplPolicy::kRandom);
    panel("LU, 48-line caches, full bit vector, sparse size factor 1",
          generate_lu(lu), config);
  }
  return 0;
}
