// Figure 14: effect of the sparse-directory replacement policy on traffic
// (associativity 4, size factors 1/2/4).
//
// Paper shape (on LU): LRU performs best, random is close behind, and
// least-recently-allocated (LRA) is worst — LRA keeps evicting entries
// that were allocated early but are still hot, so they come right back.
//
// We run the paper's LU panel and add a DWF panel: DWF's long-lived,
// constantly re-read pattern blocks are the cleanest instance of the
// "allocated early, used frequently" entries that separate the policies.
// See EXPERIMENTS.md for where our scaled-down LU deviates.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

void panel(const ProgramTrace& trace, std::uint64_t cache_lines) {
  const RunResult baseline =
      run_trace(machine(scheme_full(), cache_lines), trace);

  std::cout << "Replacement policies, " << trace.app_name
            << " (full bit vector, associativity 4, " << cache_lines
            << " cache lines/proc; traffic normalized to non-sparse = "
               "100)\n\n";
  TextTable table;
  table.header({"size factor", "policy", "total msgs", "inv+ack",
                "dir replacements", "repl invals"});
  for (int size_factor : {1, 2, 4}) {
    for (ReplPolicy policy :
         {ReplPolicy::kLru, ReplPolicy::kRandom, ReplPolicy::kLra}) {
      SystemConfig config = machine(scheme_full(), cache_lines);
      make_sparse(config, size_factor, 4, policy);
      const RunResult result = run_trace(config, trace);
      table.row({std::to_string(size_factor), repl_policy_name(policy),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.sparse_replacements),
                 fmt_count(result.protocol.sparse_replacement_invals)});
    }
    table.rule();
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Figure 14: effect of replacement policies in the sparse "
               "directory\n\n";
  LuConfig lu;
  lu.procs = kProcs;
  lu.block_size = kBlockSize;
  lu.n = 160;
  lu.seed = kSeed;
  panel(generate_lu(lu), 192);

  DwfConfig dwf;
  dwf.procs = kProcs;
  dwf.block_size = kBlockSize;
  dwf.seed = kSeed;
  panel(generate_dwf(dwf), 48);
  return 0;
}
