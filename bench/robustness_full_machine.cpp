// Robustness check: do the paper's scheme orderings survive a more
// realistic machine model?
//
// The paper's simulator (and our headline figures) uses a single cache
// level, stall-on-write processors and contention-free directories. This
// harness re-runs the Figure 7-10 comparison on a "full DASH realism"
// configuration — two-level caches (write-through L1 + coherence L2),
// release-consistency write buffering and home-directory occupancy
// queueing — and checks that every qualitative conclusion still holds:
// Dir3NB collapses on LU/DWF, Dir3B pays on LocusRoute, the coarse vector
// tracks the full vector everywhere.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  std::cout << "Robustness: Figure 7-10 orderings under a realistic "
               "machine model\n(two-level caches, release consistency, "
               "directory contention; normalized to Dir32 = 100)\n\n";

  const SchemeConfig schemes[] = {scheme_full(), scheme_cv(), scheme_b(),
                                  scheme_nb()};
  for (AppKind app : {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d,
                      AppKind::kLocusRoute}) {
    const ProgramTrace trace =
        generate_app(app, kProcs, kBlockSize, kSeed, 0.5);
    std::cout << trace.app_name << ":\n\n";
    TextTable table;
    table.header({"scheme", "exec time", "total msgs", "inv+ack",
                  "queue wait", "mean invals"});
    RunResult baseline;
    for (const SchemeConfig& scheme : schemes) {
      SystemConfig config = machine(scheme);
      config.l1_lines_per_proc = 128;       // 2 KB write-through primary
      config.model_contention = true;       // busy home controllers
      CoherenceSystem system(config);
      EngineConfig engine_config;
      engine_config.release_consistency = true;  // DASH write buffering
      Engine engine(system, trace, engine_config);
      const RunResult result = engine.run();
      if (scheme.kind == SchemeKind::kFullBitVector) {
        baseline = result;
      }
      table.row({make_format(scheme)->name(),
                 pct(result.exec_cycles, baseline.exec_cycles),
                 pct(result.protocol.messages.total(),
                     baseline.protocol.messages.total()),
                 pct(result.protocol.messages.inv_plus_ack(),
                     baseline.protocol.messages.inv_plus_ack()),
                 fmt_count(result.protocol.contention_wait_cycles),
                 fmt(result.protocol.inval_distribution.mean(), 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected: the same winners and losers as Figures 7-10 — "
               "the paper's\nconclusions are not artifacts of the "
               "simplified timing model.\n";
  return 0;
}
