// hotspot_report: ranked contention report over a datacenter sweep.
//
// Runs the datacenter workload grid (trace/datacenter.hpp) with latency
// attribution enabled, folds every cell's collector into one aggregate,
// and prints a schema-versioned JSON report ("dircc-hotspot" v1): the
// top-k busiest directed mesh links (named by grid coordinates), the
// hottest home directory controllers, the queueing-vs-service split of
// transaction critical paths, per-class latency histograms and the
// invalidation fan-out distribution.
//
// Per-hop timing (and with it link/home contention) only exists under the
// queued latency backend — run with --backend queued for a meaningful
// report; under the default analytic backend only the transaction-class
// and fan-out sections are populated.
//
// Attribution uses simulated Cycle time exclusively, so the report's bytes
// are identical across --threads values (the CI hotspot smoke check).
//
// Examples:
//   hotspot_report --backend queued --top 10
//   hotspot_report --backend queued --workloads kv --clients 512 --out h.json
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "trace/datacenter.hpp"

namespace {

using namespace dircc;
using namespace dircc::bench;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

DatacenterKind parse_workload(const std::string& name) {
  if (name == "kv") return DatacenterKind::kKv;
  if (name == "queue") return DatacenterKind::kQueue;
  if (name == "oltp") return DatacenterKind::kOltp;
  ensure(false, "unknown workload (expected kv, queue or oltp)");
  return DatacenterKind::kKv;
}

SchemeConfig parse_scheme(const std::string& name, int clusters) {
  if (name == "full") return SchemeConfig::full(clusters);
  if (name == "cv") return SchemeConfig::coarse(clusters, 3, 2);
  if (name == "b") return SchemeConfig::broadcast(clusters, 3);
  if (name == "nb") return SchemeConfig::no_broadcast(clusters, 3);
  ensure(false, "unknown scheme (expected full, cv, b or nb)");
  return SchemeConfig::full(clusters);
}

}  // namespace

int run_main(int argc, char** argv) {
  CliParser cli;
  cli.add_option("workloads", "kv,queue,oltp",
                 "comma-separated datacenter workloads (kv,queue,oltp)");
  cli.add_option("schemes", "full,cv,b,nb",
                 "comma-separated directory schemes (full,cv,b,nb)");
  cli.add_option("clients", "256",
                 "comma-separated simulated client counts (e.g. 64,256,1024)");
  cli.add_option("procs", "32", "processors (one per cluster)");
  cli.add_option("cache-lines", "1024", "cache lines per processor");
  cli.add_option("scale", "1.0",
                 "per-client operation-count multiplier (event-count axis)");
  cli.add_option("seed", "1990", "base seed for traces and per-cell seeds");
  cli.add_option("top", "10", "ranked entries per resource class");
  cli.add_option("out", "-",
                 "write the hotspot report JSON here ('-' = stdout)");
  add_harness_options(cli);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(argv[0]);
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(argv[0]);
    return 0;
  }

  const int procs = static_cast<int>(cli.get_int("procs"));
  const auto cache_lines =
      static_cast<std::uint64_t>(cli.get_int("cache-lines"));
  const double scale = cli.get_double("scale");
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int top = static_cast<int>(cli.get_int("top"));
  ensure(top >= 1, "--top must be at least 1");

  // Same fixed grid nesting as datacenter_sweep (workload x clients x
  // scheme): cell keys, and with them per-cell seeds, match the sweep's.
  std::vector<harness::SweepCell> cells;
  for (const std::string& wl_token : split_list(cli.get("workloads"))) {
    const DatacenterKind kind = parse_workload(wl_token);
    for (const std::string& clients_token : split_list(cli.get("clients"))) {
      const std::int64_t parsed = parse_int_token("clients", clients_token);
      if (parsed < 1) {
        throw CliError("option --clients entries must be positive, got '" +
                       clients_token + "'");
      }
      const auto clients = static_cast<std::uint64_t>(parsed);
      for (const std::string& scheme_token :
           split_list(cli.get("schemes"))) {
        const SchemeConfig scheme = parse_scheme(scheme_token, procs);
        const std::string scheme_name = make_format(scheme)->name();
        harness::SweepCell cell;
        cell.key = std::string("dc/app=") + datacenter_name(kind) +
                   "/clients=" + clients_token + "/scheme=" + scheme_name;
        cell.fields = {{"app", datacenter_name(kind)},
                       {"clients", clients_token},
                       {"scheme", scheme_name}};
        cell.trace = harness::datacenter_trace(kind, procs, kBlockSize,
                                               clients, base_seed, scale);
        cell.system.num_procs = procs;
        cell.system.procs_per_cluster = 1;
        cell.system.cache_lines_per_proc = cache_lines;
        cell.system.cache_assoc = 4;
        cell.system.block_size = kBlockSize;
        cell.system.scheme = scheme;
        cell.system.seed = harness::cell_seed(base_seed, cell.key);
        cells.push_back(std::move(cell));
      }
    }
  }
  ensure(!cells.empty(), "the grid spec expands to zero cells");

  if (!obs::compiled()) {
    std::cerr << "hotspot_report needs DIRCC_OBS=1 (attribution is "
                 "compiled out of this build)\n";
    return 1;
  }

  HarnessOptions options = read_harness_options(cli);
  apply_backend(cells, options);
  apply_hierarchy(cells, options);
  apply_engine_threads(cells, options);

  harness::SweepOptions sweep = sweep_options(options);
  sweep.attrib = true;  // the report *is* the attribution
  harness::SweepRunner runner(options.threads);
  const std::vector<harness::CellResult> results = runner.run(cells, sweep);

  obs::attrib::Collector aggregate;
  for (const harness::CellResult& cell : results) {
    ensure(cell.attrib != nullptr, "sweep cell produced no attribution");
    aggregate.merge(*cell.attrib);
  }

  const std::string out_path = cli.get("out");
  if (out_path.empty() || out_path == "-") {
    obs::attrib::write_hotspot_json(aggregate, top, std::cout);
  } else {
    std::ofstream out(out_path);
    ensure(static_cast<bool>(out), "cannot open the --out path");
    obs::attrib::write_hotspot_json(aggregate, top, out);
  }

  emit_outputs(options, runner, results);
  return 0;
}

int main(int argc, char** argv) {
  return dircc::run_cli([&] { return run_main(argc, argv); });
}
