// Section 7 ablation: directory-queued lock grant under the coarse vector.
//
// With a full bit vector the directory knows exactly which cluster waits
// for a lock and grants it to one waiter. With a coarse vector it only
// knows the *region*, so a release must wake every waiter in the head
// waiter's region and all but one retry — "slightly less efficient, but it
// still avoids having to release all waiting processors".
//
// This harness runs a lock-heavy workload under (a) precise grant,
// (b) region grant with r=2 (Dir3CV2's region size), and (c) the hot-spot
// strawman the paper warns about: waking *every* waiter (region = machine).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  // Lock-heavy synthetic: all processors hammer four locks guarding small
  // critical sections on shared counters. Neighbouring processors contend
  // on the same lock (as they would when co-located work shares a lock),
  // so region-granularity grants actually wake region-mates.
  ProgramTrace trace;
  trace.app_name = "lock-storm";
  trace.block_size = kBlockSize;
  trace.per_proc.assign(kProcs, {});
  for (int p = 0; p < kProcs; ++p) {
    auto& stream = trace.per_proc[static_cast<std::size_t>(p)];
    for (int round = 0; round < 64; ++round) {
      const Addr lock_id = static_cast<Addr>((p / 8 + round) % 4);
      stream.push_back(TraceEvent::lock(lock_id));
      stream.push_back(TraceEvent::read(lock_id * kBlockSize));
      stream.push_back(TraceEvent::write(lock_id * kBlockSize));
      stream.push_back(TraceEvent::unlock(lock_id));
      stream.push_back(TraceEvent::think(20));
    }
  }

  struct Mode {
    const char* label;
    bool region_grant;
    int region_size;
  };
  const Mode modes[] = {
      {"precise grant (full vector)", false, 1},
      {"region grant r=2 (Dir3CV2)", true, 2},
      {"region grant r=8", true, 8},
      {"wake-all (hot spot)", true, kProcs},
  };

  std::cout << "Section 7 ablation: lock grant policy under coarse-vector "
               "directories\n\n";
  TextTable table;
  table.header({"grant policy", "exec time", "sync msgs", "lock retries",
                "contended acquires"});
  double baseline_exec = 0;
  double baseline_msgs = 0;
  for (const Mode& mode : modes) {
    CoherenceSystem system(machine(scheme_cv()));
    EngineConfig engine_config;
    engine_config.region_grant_locks = mode.region_grant;
    engine_config.lock_region_size = mode.region_size;
    Engine engine(system, trace, engine_config);
    const RunResult result = engine.run();
    const auto exec = static_cast<double>(result.exec_cycles);
    const auto msgs = static_cast<double>(result.sync.messages.total());
    if (baseline_exec == 0) {
      baseline_exec = exec;
      baseline_msgs = msgs;
    }
    table.row({mode.label, pct(exec, baseline_exec), pct(msgs, baseline_msgs),
               fmt_count(result.sync.lock_retries),
               fmt_count(result.sync.lock_contended)});
  }
  table.print(std::cout);
  std::cout << "\n(normalized to precise grant = 100)\n";
  return 0;
}
