// Table 2: general application characteristics of the four generated
// benchmark traces (32 processors, 16-byte blocks).
//
// Paper reports (in millions): shared refs, shared reads, shared writes,
// sync ops (thousands) and shared space (MB). Our traces are scaled-down
// algorithmic regenerations, so the absolute counts are smaller; the
// read/write ratios and the relative data-set sizes are the comparison
// points.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace dircc;
  using namespace dircc::bench;

  std::cout << "Table 2: general application characteristics (" << kProcs
            << " processors, " << kBlockSize << " B blocks)\n\n";
  TextTable table;
  table.header({"application", "shared refs", "reads", "writes", "sync ops",
                "shared space (MB)", "read/write"});
  for (AppKind app : {AppKind::kLu, AppKind::kDwf, AppKind::kMp3d,
                      AppKind::kLocusRoute}) {
    const ProgramTrace trace =
        generate_app(app, kProcs, kBlockSize, kSeed, 1.0);
    const TraceCharacteristics c = characterize(trace);
    table.row({trace.app_name, fmt_count(c.shared_refs),
               fmt_count(c.shared_reads), fmt_count(c.shared_writes),
               fmt_count(c.sync_ops), fmt(c.shared_mbytes, 2),
               fmt(static_cast<double>(c.shared_reads) /
                       static_cast<double>(c.shared_writes),
                   2)});
  }
  table.print(std::cout);
  return 0;
}
