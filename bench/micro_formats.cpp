// google-benchmark microbenchmarks for the per-access hot paths: directory
// format operations and whole protocol transactions.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "directory/format.hpp"
#include "directory/store.hpp"
#include "protocol/system.hpp"

namespace {

using namespace dircc;

SchemeConfig scheme_for(int which) {
  switch (which) {
    case 0:
      return SchemeConfig::full(64);
    case 1:
      return SchemeConfig::broadcast(64, 3);
    case 2:
      return SchemeConfig::no_broadcast(64, 3);
    case 3:
      return SchemeConfig::superset(64, 3);
    default:
      return SchemeConfig::coarse(64, 3, 4);
  }
}

void BM_FormatAddSharer(benchmark::State& state) {
  const auto format = make_format(scheme_for(static_cast<int>(state.range(0))));
  Rng rng(1);
  SharerRepr repr;
  int added = 0;
  for (auto _ : state) {
    if (++added % 16 == 0) {
      repr.reset();
    }
    benchmark::DoNotOptimize(
        format->add_sharer(repr, static_cast<NodeId>(rng.below(64))));
  }
}
BENCHMARK(BM_FormatAddSharer)->DenseRange(0, 4)->ArgName("scheme");

void BM_FormatCollectTargets(benchmark::State& state) {
  const auto format = make_format(scheme_for(static_cast<int>(state.range(0))));
  Rng rng(1);
  SharerRepr repr;
  for (int i = 0; i < 12; ++i) {
    format->add_sharer(repr, static_cast<NodeId>(rng.below(64)));
  }
  std::vector<NodeId> targets;
  for (auto _ : state) {
    targets.clear();
    format->collect_targets(repr, 0, targets);
    benchmark::DoNotOptimize(targets.data());
  }
}
BENCHMARK(BM_FormatCollectTargets)->DenseRange(0, 4)->ArgName("scheme");

void BM_SparseStoreFindOrAlloc(benchmark::State& state) {
  SparseDirectoryStore store(1024, static_cast<int>(state.range(0)),
                             ReplPolicy::kLru, 1);
  Rng rng(2);
  std::optional<VictimEntry> victim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.find_or_alloc(rng.below(8192), victim));
  }
}
BENCHMARK(BM_SparseStoreFindOrAlloc)->Arg(1)->Arg(4)->ArgName("assoc");

void BM_ProtocolAccess(benchmark::State& state) {
  SystemConfig config;
  config.num_procs = 32;
  config.cache_lines_per_proc = 256;
  config.cache_assoc = 4;
  config.scheme = state.range(0) == 0 ? SchemeConfig::full(32)
                                      : SchemeConfig::coarse(32, 3, 2);
  config.validate = false;  // measure the protocol, not the checker
  CoherenceSystem system(config);
  Rng rng(3);
  for (auto _ : state) {
    const auto proc = static_cast<ProcId>(rng.below(32));
    const auto block = static_cast<BlockAddr>(rng.below(2048));
    benchmark::DoNotOptimize(system.access(proc, block, rng.chance(0.3)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProtocolAccess)->Arg(0)->Arg(1)->ArgName("cv");

}  // namespace

BENCHMARK_MAIN();
